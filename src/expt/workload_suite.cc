#include "expt/workload_suite.hh"

#include <cstdlib>

#include "trace/interleave.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace expt {

std::vector<TraceSpec>
paperSuite()
{
    std::vector<TraceSpec> suite;
    // VAX-flavoured: heavier multiprogramming, OS-like churn.
    for (std::uint64_t v = 0; v < 4; ++v) {
        TraceSpec s;
        s.name = (v < 3 ? "vms" : "ultrix") + std::to_string(v);
        s.variant = v;
        s.processes = 6 + v % 2;
        s.switchInterval = 9000 + 2000 * v;
        suite.push_back(s);
    }
    // MIPS-flavoured: interleaved user programs.
    for (std::uint64_t v = 4; v < 8; ++v) {
        TraceSpec s;
        s.name = "mips" + std::to_string(v - 4);
        s.variant = v;
        s.processes = 4;
        s.switchInterval = 15000 + 3000 * (v - 4);
        suite.push_back(s);
    }
    return suite;
}

std::vector<TraceSpec>
gridSuite()
{
    const auto full = paperSuite();
    // Two of each flavour keeps the mix while quartering the cost
    // of the (size x cycle-time) grid sweeps.
    return {full[0], full[2], full[4], full[6]};
}

double
suiteScale()
{
    const char *quick = std::getenv("MLC_QUICK");
    if (!quick || quick[0] == '\0')
        return 1.0;
    double divisor = 0.0;
    if (parseDouble(quick, divisor) && divisor > 1.0)
        return 1.0 / divisor;
    return 0.125; // MLC_QUICK=1 (or junk): 8x shorter
}

std::uint64_t
scaledWarmup(const TraceSpec &spec)
{
    const auto scaled = static_cast<std::uint64_t>(
        static_cast<double>(spec.warmupRefs) * suiteScale());
    return scaled < 1000 ? 1000 : scaled;
}

std::uint64_t
scaledMeasure(const TraceSpec &spec)
{
    const auto scaled = static_cast<std::uint64_t>(
        static_cast<double>(spec.measureRefs) * suiteScale());
    return scaled < 2000 ? 2000 : scaled;
}

std::vector<trace::MemRef>
materialize(const TraceSpec &spec)
{
    auto source = trace::makeMultiprogrammedWorkload(
        spec.processes, spec.switchInterval, spec.variant);
    const std::uint64_t total =
        scaledWarmup(spec) + scaledMeasure(spec);
    return trace::collect(*source, total);
}

TraceStore::TraceStore(std::vector<TraceSpec> specs,
                       std::vector<std::vector<trace::MemRef>> traces)
    : specs_(std::move(specs)), traces_(std::move(traces))
{
}

TraceStore::TraceStore(std::vector<TraceSpec> specs, Materializer m)
    : specs_(std::move(specs)), traces_(specs_.size()),
      materializer_(std::move(m))
{
    latches_.reserve(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i)
        latches_.push_back(std::make_unique<Latch>());
}

TraceStore
TraceStore::materialize(std::vector<TraceSpec> specs,
                        std::size_t jobs)
{
    std::vector<std::vector<trace::MemRef>> traces(specs.size());
    parallelFor(jobs, specs.size(), [&](std::size_t i) {
        traces[i] = expt::materialize(specs[i]);
    });
    return TraceStore(std::move(specs), std::move(traces));
}

TraceStore
TraceStore::deferred(std::vector<TraceSpec> specs, Materializer m)
{
    if (!m)
        m = [](const TraceSpec &spec) {
            return expt::materialize(spec);
        };
    return TraceStore(std::move(specs), std::move(m));
}

void
TraceStore::ensure(std::size_t i) const
{
    if (latches_.empty())
        return; // eager store: everything resident at construction
    if (i >= latches_.size())
        mlc_panic("TraceStore::ensure: trace ", i, " of ",
                  latches_.size());
    Latch &latch = *latches_[i];
    // call_once is the race arbiter: exactly one caller runs the
    // materializer, everyone else blocks until the stream is
    // resident, and the write to traces_[i] happens-before every
    // post-latch read.
    std::call_once(latch.once, [&] {
        traces_[i] = materializer_(specs_[i]);
        latch.ready.store(true, std::memory_order_release);
    });
}

bool
TraceStore::resident(std::size_t i) const
{
    if (latches_.empty())
        return true;
    return latches_[i]->ready.load(std::memory_order_acquire);
}

std::size_t
TraceStore::residentCount() const
{
    if (latches_.empty())
        return specs_.size();
    std::size_t n = 0;
    for (std::size_t i = 0; i < latches_.size(); ++i)
        if (resident(i))
            ++n;
    return n;
}

void
TraceStore::ensureAll(std::size_t jobs) const
{
    if (latches_.empty())
        return;
    parallelFor(jobs, specs_.size(),
                [this](std::size_t i) { ensure(i); });
}

} // namespace expt
} // namespace mlc
