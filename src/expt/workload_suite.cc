#include "expt/workload_suite.hh"

#include <cstdlib>

#include "trace/interleave.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace expt {

std::vector<TraceSpec>
paperSuite()
{
    std::vector<TraceSpec> suite;
    // VAX-flavoured: heavier multiprogramming, OS-like churn.
    for (std::uint64_t v = 0; v < 4; ++v) {
        TraceSpec s;
        s.name = (v < 3 ? "vms" : "ultrix") + std::to_string(v);
        s.variant = v;
        s.processes = 6 + v % 2;
        s.switchInterval = 9000 + 2000 * v;
        suite.push_back(s);
    }
    // MIPS-flavoured: interleaved user programs.
    for (std::uint64_t v = 4; v < 8; ++v) {
        TraceSpec s;
        s.name = "mips" + std::to_string(v - 4);
        s.variant = v;
        s.processes = 4;
        s.switchInterval = 15000 + 3000 * (v - 4);
        suite.push_back(s);
    }
    return suite;
}

std::vector<TraceSpec>
gridSuite()
{
    const auto full = paperSuite();
    // Two of each flavour keeps the mix while quartering the cost
    // of the (size x cycle-time) grid sweeps.
    return {full[0], full[2], full[4], full[6]};
}

double
suiteScale()
{
    const char *quick = std::getenv("MLC_QUICK");
    if (!quick || quick[0] == '\0')
        return 1.0;
    double divisor = 0.0;
    if (parseDouble(quick, divisor) && divisor > 1.0)
        return 1.0 / divisor;
    return 0.125; // MLC_QUICK=1 (or junk): 8x shorter
}

std::uint64_t
scaledWarmup(const TraceSpec &spec)
{
    const auto scaled = static_cast<std::uint64_t>(
        static_cast<double>(spec.warmupRefs) * suiteScale());
    return scaled < 1000 ? 1000 : scaled;
}

std::uint64_t
scaledMeasure(const TraceSpec &spec)
{
    const auto scaled = static_cast<std::uint64_t>(
        static_cast<double>(spec.measureRefs) * suiteScale());
    return scaled < 2000 ? 2000 : scaled;
}

std::vector<trace::MemRef>
materialize(const TraceSpec &spec)
{
    auto source = trace::makeMultiprogrammedWorkload(
        spec.processes, spec.switchInterval, spec.variant);
    const std::uint64_t total =
        scaledWarmup(spec) + scaledMeasure(spec);
    return trace::collect(*source, total);
}

TraceStore
TraceStore::materialize(std::vector<TraceSpec> specs,
                        std::size_t jobs)
{
    std::vector<std::vector<trace::MemRef>> traces(specs.size());
    parallelFor(jobs, specs.size(), [&](std::size_t i) {
        traces[i] = expt::materialize(specs[i]);
    });
    return TraceStore(std::move(specs), std::move(traces));
}

} // namespace expt
} // namespace mlc
