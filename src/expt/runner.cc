#include "expt/runner.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace expt {

hier::SimResults
runOnTrace(const hier::HierarchyParams &params,
           trace::RefSpan refs, std::uint64_t warmup_refs)
{
    hier::HierarchySimulator sim(params);
    sim.warmUp(refs.first(warmup_refs));
    sim.run(refs.dropFirst(warmup_refs));
    return sim.results();
}

hier::SimResults
runOnTrace(const hier::HierarchyParams &params,
           const std::vector<trace::MemRef> &refs,
           std::uint64_t warmup_refs)
{
    return runOnTrace(
        params, trace::RefSpan{refs.data(), refs.size()},
        warmup_refs);
}

SuiteResults
runSuite(const hier::HierarchyParams &params,
         const std::vector<TraceSpec> &specs)
{
    std::vector<std::vector<trace::MemRef>> traces;
    traces.reserve(specs.size());
    for (const auto &spec : specs)
        traces.push_back(materialize(spec));
    return runSuite(params, specs, traces);
}

SuiteResults
runSuite(const hier::HierarchyParams &params,
         const std::vector<TraceSpec> &specs,
         const std::vector<std::vector<trace::MemRef>> &traces,
         std::size_t jobs)
{
    if (specs.empty() || specs.size() != traces.size())
        mlc_panic("runSuite: specs/traces mismatch (", specs.size(),
                  " vs ", traces.size(), ")");

    // Simulate every trace into its own slot. Each worker builds a
    // private HierarchySimulator; the shared trace vectors are only
    // read. Slot indexing (never completion order) plus the fixed
    // trace-order reduction below keeps jobs=1 and jobs=N
    // bit-identical.
    std::vector<hier::SimResults> per_trace(specs.size());
    parallelFor(jobs, specs.size(), [&](std::size_t t) {
        per_trace[t] =
            runOnTrace(params, traces[t], scaledWarmup(specs[t]));
    });

    SuiteResults avg;
    const std::size_t depth = params.levels.size();
    avg.localMiss.assign(depth, 0.0);
    avg.globalMiss.assign(depth, 0.0);
    if (params.measureSolo) {
        avg.soloMiss.assign(depth, 0.0);
        avg.soloMissStdDev.assign(depth, 0.0);
    }

    std::vector<double> rel_samples;
    std::vector<std::vector<double>> solo_samples(depth);
    for (std::size_t t = 0; t < per_trace.size(); ++t) {
        const hier::SimResults &r = per_trace[t];
        avg.relExecTime += r.relativeExecTime;
        rel_samples.push_back(r.relativeExecTime);
        avg.cpi += r.cpi;
        avg.l1LocalMiss += r.levels[0].localMissRatio;
        avg.meanL1MissPenaltyCycles += r.meanL1MissPenaltyCycles;
        for (std::size_t i = 0; i < depth; ++i) {
            avg.localMiss[i] += r.levels[i + 1].localMissRatio;
            avg.globalMiss[i] += r.levels[i + 1].globalMissRatio;
            if (params.measureSolo) {
                avg.soloMiss[i] += r.levels[i + 1].soloMissRatio;
                solo_samples[i].push_back(
                    r.levels[i + 1].soloMissRatio);
            }
        }
        ++avg.traces;
    }

    const double n = static_cast<double>(avg.traces);
    avg.relExecTime /= n;
    avg.cpi /= n;
    avg.l1LocalMiss /= n;
    avg.meanL1MissPenaltyCycles /= n;
    for (std::size_t i = 0; i < depth; ++i) {
        avg.localMiss[i] /= n;
        avg.globalMiss[i] /= n;
        if (params.measureSolo)
            avg.soloMiss[i] /= n;
    }

    // Sample standard deviation across traces. The denominator is
    // the sample count itself, not the trace count: they are equal
    // today, but a divergence must not silently skew the spread.
    auto stddev = [](const std::vector<double> &xs, double mean) {
        if (xs.size() < 2)
            return 0.0;
        double acc = 0.0;
        for (double x : xs)
            acc += (x - mean) * (x - mean);
        return std::sqrt(
            acc / (static_cast<double>(xs.size()) - 1.0));
    };
    avg.relExecTimeStdDev = stddev(rel_samples, avg.relExecTime);
    for (std::size_t i = 0; i < depth; ++i)
        if (params.measureSolo)
            avg.soloMissStdDev[i] =
                stddev(solo_samples[i], avg.soloMiss[i]);
    return avg;
}

SuiteResults
runSuite(const hier::HierarchyParams &params,
         const TraceStore &store, std::size_t jobs)
{
    return runSuite(params, store.specs(), store.traces(), jobs);
}

} // namespace expt
} // namespace mlc
