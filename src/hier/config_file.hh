/**
 * @file
 * Text configuration front end.
 *
 * The paper: "The simulation system reads a file that specifies the
 * depth of the cache hierarchy and the configuration of each
 * cache." This parser accepts a simple key = value format:
 *
 *     # the base machine
 *     cpu.cycle        = 10ns
 *     l1.split         = true
 *     l1i.size         = 2KB
 *     l1i.block        = 16
 *     l1i.assoc        = 1
 *     l1d.size         = 2KB
 *     l1d.write_policy = write-back
 *     l2.size          = 512KB
 *     l2.block         = 32
 *     l2.cycle         = 30ns
 *     bus.l2.words     = 4
 *     bus.memory.words = 4
 *     memory.read      = 180ns
 *     memory.write     = 100ns
 *     memory.gap       = 120ns
 *     wbuffer.depth    = 4
 *
 * Deeper hierarchies add l3.*, l4.* ... sections (and matching
 * bus.l3.words etc.). Unspecified keys keep the base-machine
 * defaults; unknown keys are fatal so typos cannot silently
 * configure the wrong machine.
 */

#ifndef MLC_HIER_CONFIG_FILE_HH
#define MLC_HIER_CONFIG_FILE_HH

#include <iosfwd>
#include <istream>
#include <string>

#include "hier/hierarchy_config.hh"

namespace mlc {
namespace hier {

/** Parse a configuration stream; fatal() on any error. */
HierarchyParams parseConfig(std::istream &is);

/** Parse a configuration file by path; fatal() on any error. */
HierarchyParams parseConfigFile(const std::string &path);

/** Emit @p params in the same format (round-trips via parse). */
void writeConfig(std::ostream &os, const HierarchyParams &params);

} // namespace hier
} // namespace mlc

#endif // MLC_HIER_CONFIG_FILE_HH
