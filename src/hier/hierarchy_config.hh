/**
 * @file
 * Whole-system configuration: CPU, split L1, the downstream cache
 * levels, inter-level buses, write buffers and main memory. The
 * static baseMachine() factory reproduces the paper's Section 2
 * system exactly.
 */

#ifndef MLC_HIER_HIERARCHY_CONFIG_HH
#define MLC_HIER_HIERARCHY_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.hh"
#include "mem/main_memory.hh"

namespace mlc {
namespace hier {

/** Full hierarchy description. */
struct HierarchyParams
{
    /** CPU clock period; the paper's base machine runs at 10 ns. */
    double cpuCycleNs = 10.0;

    /** Split first level? If false, l1d serves all references. */
    bool splitL1 = true;
    cache::CacheParams l1i;
    cache::CacheParams l1d;

    /** Downstream cache levels (L2, L3, ...), unified. May be
     *  empty for a single-level system. */
    std::vector<cache::CacheParams> levels;

    /**
     * Width in words of the bus feeding each downstream level;
     * entry i is the bus between level i+1 and level i+2, and the
     * last entry is the backplane to main memory. Must have
     * levels.size() + 1 entries. Each bus cycles at the rate of the
     * device below it (the paper: CPU-L2 bus and backplane both
     * cycle at the L2 rate).
     */
    std::vector<std::uint32_t> busWidthWords;

    mem::MainMemoryParams memory;

    /**
     * Backplane (memory-bus) cycle time in ns. The paper's base
     * machine sets it equal to the L2 cycle time (30 ns), but the
     * Section 4 sweeps hold "the main memory access portion of the
     * second-level cache miss penalty" constant while the L2 cycle
     * time varies, so it is an independent parameter here. 0 means
     * "track the deepest cache level's cycle time".
     */
    double backplaneCycleNs = 0.0;

    /** Entries per inter-level write buffer (paper: 4). */
    std::size_t writeBufferDepth = 4;

    /** Also run solo co-simulations of each downstream level
     *  (Section 3's solo miss ratio). Costs one functional cache
     *  per level. */
    bool measureSolo = false;

    /** Validate and finalize every nested config; fatal() on
     *  inconsistency. */
    void finalize();

    /** The paper's base machine: 10 ns CPU, split 2K+2K
     *  direct-mapped L1 (16 B blocks, write-back), 512 KB
     *  direct-mapped L2 (32 B blocks, 3 CPU-cycle cycle time),
     *  4-word buses, 4-entry write buffers, 180/100/120 ns DRAM. */
    static HierarchyParams baseMachine();

    /** Convenience: scale the L2 to @p size_bytes and @p cpu_cycles
     *  per L2 cycle (the design-space axes of Figures 4-1..4-4). */
    HierarchyParams withL2(std::uint64_t size_bytes,
                           std::uint32_t cpu_cycles,
                           std::uint32_t assoc = 1) const;

    /** Convenience: resize the split L1 (total bytes across I+D,
     *  split evenly, as the paper's "4KB L1" means 2K+2K). */
    HierarchyParams withL1Total(std::uint64_t total_bytes) const;

    /** One-line description for reports. */
    std::string summary() const;
};

} // namespace hier
} // namespace mlc

#endif // MLC_HIER_HIERARCHY_CONFIG_HH
