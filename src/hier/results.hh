/**
 * @file
 * Simulation results: the quantities the paper reports.
 *
 * The three miss-ratio families follow Section 2/3 exactly and are
 * computed over read requests (loads + instruction fetches) only:
 *
 *  - local  = level misses / read requests reaching the level,
 *  - global = level misses / CPU read references,
 *  - solo   = read miss ratio of an identical cache co-simulated
 *             directly on the CPU reference stream.
 *
 * "Relative execution time" normalizes total cycles against an
 * ideal machine in which every reference hits in L1 (stores still
 * pay the L1 write-hit time); the paper's own normalization is not
 * stated, and this choice reproduces its reported range.
 */

#ifndef MLC_HIER_RESULTS_HH
#define MLC_HIER_RESULTS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mlc {
namespace hier {

/** Per-cache measurements. */
struct LevelResults
{
    std::string name;

    std::uint64_t readRequests = 0; //!< read-origin requests seen
    std::uint64_t readMisses = 0;   //!< ... that missed
    std::uint64_t writebacks = 0;   //!< dirty victims pushed down

    double localMissRatio = 0.0;
    double globalMissRatio = 0.0;
    /** Solo read miss ratio; negative when not measured. */
    double soloMissRatio = -1.0;

    bool hasSolo() const { return soloMissRatio >= 0.0; }
};

/**
 * Where the cycles went. The components sum exactly to totalCycles
 * (up to the final cycle-rounding), which the tests assert: any
 * stall the simulator models must be attributed somewhere.
 */
struct CycleBreakdown
{
    /** One cycle per instruction. */
    double base = 0.0;
    /** Extra cycles of L1 write hits (the 2-cycle store). */
    double storeWriteHit = 0.0;
    /** Read-miss stalls serviced without main memory. */
    double readStallCacheHit = 0.0;
    /** Read-miss stalls that reached main memory. */
    double readStallMemory = 0.0;
    /** Store-miss fetch and write-buffer back-pressure stalls. */
    double storeStall = 0.0;

    double
    total() const
    {
        return base + storeWriteHit + readStallCacheHit +
               readStallMemory + storeStall;
    }
};

/** Whole-run measurements. */
struct SimResults
{
    std::uint64_t instructions = 0;
    std::uint64_t cpuReads = 0;  //!< ifetches + loads
    std::uint64_t cpuWrites = 0; //!< stores
    std::uint64_t references = 0;

    std::uint64_t totalCycles = 0;
    std::uint64_t idealCycles = 0;

    double cpi = 0.0;
    double relativeExecTime = 0.0;

    /** Combined split-L1 view first (index 0), then L2, L3, ... */
    std::vector<LevelResults> levels;
    /** Split-L1 detail (empty for a unified L1). */
    std::vector<LevelResults> l1Detail;

    /** Mean CPU-cycles of read stall per L1 read miss. */
    double meanL1MissPenaltyCycles = 0.0;

    /** Attribution of every simulated cycle. */
    CycleBreakdown breakdown;

    std::uint64_t writeBufferFullStalls = 0;

    /** Human-readable multi-line report. */
    void print(std::ostream &os) const;
};

} // namespace hier
} // namespace mlc

#endif // MLC_HIER_RESULTS_HH
