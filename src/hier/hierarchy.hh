/**
 * @file
 * The multi-level cache hierarchy timing simulator — the paper's
 * measurement apparatus.
 *
 * Model (Section 2 of the paper):
 *  - A RISC-like CPU issues one instruction fetch per cycle plus at
 *    most one data reference in the same cycle. Read hits in L1 are
 *    fully pipelined; an L1 write hit takes the L1's write time
 *    (2 cycles in the base machine, i.e. one stall cycle).
 *  - An L1 read miss stalls the CPU until the entire L1 block
 *    arrives from the next level; a miss at the last cache level
 *    stalls it until the whole block arrives from main memory.
 *  - Between every pair of adjacent levels sits a write buffer
 *    (default 4 entries) through which dirty victims and forwarded
 *    stores drain; demand reads have priority over unstarted
 *    buffered writes but wait for writes in progress and for
 *    buffered writes that overlap the read.
 *  - Main memory has read/write operation times and a refresh gap
 *    between successive operations.
 *
 * Simplifications (documented in DESIGN.md): fills do not charge
 * extra array occupancy at the level being filled, and victim
 * write-backs / forwarded stores that miss in an intermediate level
 * are passed around it (write-around) rather than allocating — the
 * paper's write-back L1 with ample buffering makes write effects
 * "mostly hidden" either way.
 *
 * Because reads block the CPU, the whole machine is exact under a
 * busy-until schedule: there is no event queue, and simulation
 * costs a few hundred instructions per reference.
 */

#ifndef MLC_HIER_HIERARCHY_HH
#define MLC_HIER_HIERARCHY_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "hier/hierarchy_config.hh"
#include "hier/results.hh"
#include "mem/bus.hh"
#include "mem/main_memory.hh"
#include "mem/timing.hh"
#include "mem/write_buffer.hh"
#include "stats/stats.hh"
#include "trace/source.hh"
#include "util/bits.hh"

namespace mlc {
namespace hier {

/**
 * One operation crossing the warm-snapshot boundary.
 *
 * During checkpointed warming a recorder captures every read/write
 * that leaves the shared hierarchy prefix (see
 * setBoundaryRecorder()); replaying the recorded stream into
 * another simulator's levels at and below the boundary evolves
 * their functional state exactly as straight-line warming would —
 * the traffic entering the boundary depends only on the prefix,
 * which compatible configurations share.
 */
struct BoundaryOp
{
    enum class Kind : std::uint8_t { Read, Write };

    Addr addr = 0;
    std::uint32_t bytes = 0;
    Kind kind = Kind::Read;
    /** The read was demand traffic (counts in readReqs_). */
    bool countRead = false;
};

/**
 * Checkpoint of the warm (functional) state above a boundary:
 * L1 caches, the shared prefix of downstream levels, and every
 * counter that advances during untimed replay. Timing state (now_,
 * write buffers, stall buckets) is deliberately absent — it only
 * advances during timed segments, which checkpointed sweeps run
 * per configuration anyway.
 */
struct WarmSnapshot
{
    /** @{ @name Shape fingerprint (restore-compat check) */
    bool splitL1 = false;
    std::size_t prefixLevels = 0;
    /** @} */

    cache::CacheSnapshot l1i; //!< meaningful only when splitL1
    cache::CacheSnapshot l1d;
    std::vector<cache::CacheSnapshot> levels; //!< [0, prefixLevels)

    /** @{ @name Counters that advance during untimed replay */
    std::uint64_t instructions = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t refsRun = 0;
    std::uint64_t l1ReadMissCount = 0;
    std::vector<std::uint64_t> readReqs;   //!< [0, prefixLevels)
    std::vector<std::uint64_t> readMisses; //!< [0, prefixLevels)
    /** @} */
};

/** Trace-driven, cycle-accounting hierarchy simulator. */
class HierarchySimulator
{
  public:
    /** @param params finalized (or finalizable) configuration. */
    explicit HierarchySimulator(HierarchyParams params);

    /**
     * Run @p refs references functionally (tags update, no timing,
     * no statistics kept afterwards) to take the caches out of the
     * cold-start region, as the paper's methodology requires. Must
     * precede run(); counters are zeroed on return.
     */
    std::uint64_t warmUp(trace::TraceSource &source,
                         std::uint64_t refs);

    /** Warm up over a contiguous span (zero-copy replay). */
    std::uint64_t warmUp(trace::RefSpan refs);

    /**
     * Simulate with full timing.
     *
     * The source is drained in batches through nextBatch(), so the
     * per-reference cost carries no virtual call; contiguous
     * sources are consumed with one copy per few hundred
     * references. Results are bit-identical to feeding the same
     * references through run(RefSpan).
     *
     * @return number of references consumed.
     */
    std::uint64_t
    run(trace::TraceSource &source,
        std::uint64_t max_refs =
            std::numeric_limits<std::uint64_t>::max());

    /** Simulate a contiguous span with full timing (zero-copy). */
    std::uint64_t run(trace::RefSpan refs);

    /**
     * Replay @p refs functionally *without* resetting counters:
     * tags, dirty bits and reference/miss counters advance, timing
     * state does not. This is the sampled engine's between-window
     * warming primitive — unlike warmUp() it may be freely
     * interleaved with timed run() calls; CPI windows are delimited
     * by snapshotting now() and instructionCount() around the timed
     * segments, so the untimed references in between never enter a
     * window's cycle arithmetic.
     */
    std::uint64_t runFunctional(trace::RefSpan refs);

    /**
     * Disable/re-enable the inline L1 read-hit fast path.
     *
     * The fast path is bit-exact (enforced by the batched-vs-scalar
     * golden tests), so this toggle exists only so benches can
     * measure the generic path against it; simulation results do
     * not depend on the setting.
     */
    void setReadHitFastPath(bool enabled) { fastHit_ = enabled; }

    /** Measurements over everything run() has simulated. */
    SimResults results() const;

    /**
     * @{ @name Warm-state checkpointing
     *
     * captureWarmState() copies the functional state above the
     * boundary — L1s, levels [0, prefix_levels), untimed-path
     * counters — into the arena; restoreWarmState() copies it back.
     * Both panic when a solo co-simulation is active (solo arrays
     * see the raw CPU stream and cannot be reconstructed from
     * boundary traffic), and restore panics when the snapshot's
     * shape does not match this simulator (different splitL1, a
     * deeper prefix than this hierarchy, or per-level geometry
     * mismatch via TagArray::restoreState).
     */
    void captureWarmState(SnapshotArena &arena, WarmSnapshot &snap,
                          std::size_t prefix_levels) const;
    void restoreWarmState(const SnapshotArena &arena,
                          const WarmSnapshot &snap);
    /** @} */

    /**
     * Record every operation that reaches main memory (the
     * boundary of a truncated warming hierarchy) into @p sink;
     * nullptr disables recording. A sweep's warmer simulator is
     * built with only the shared prefix of levels, so "main
     * memory" there is exactly the boundary into the first
     * divergent level of the full configurations.
     */
    void setBoundaryRecorder(std::vector<BoundaryOp> *sink)
    {
        boundaryRec_ = sink;
    }

    /**
     * Replay recorded boundary traffic, untimed, into this
     * hierarchy starting at @p level (levels_.size() = main
     * memory). Evolves levels >= level exactly as the straight-line
     * untimed recursion would.
     */
    std::uint64_t replayBoundary(std::size_t level,
                                 const std::vector<BoundaryOp> &ops);

    /** @{ @name Component access (tests, stats reporting) */
    const HierarchyParams &params() const { return params_; }
    const cache::Cache &l1i() const { return *l1i_; }
    const cache::Cache &l1d() const { return *l1d_; }
    std::size_t levelCount() const { return levels_.size(); }
    const cache::Cache &level(std::size_t i) const
    {
        return *levels_[i];
    }
    const mem::WriteBuffer &writeBuffer(std::size_t i) const
    {
        return *wb_[i];
    }
    Tick now() const { return now_; }
    std::uint64_t instructionCount() const { return instructions_; }
    Tick cpuCycleTicks() const { return cpuCycle_; }
    std::uint64_t memoryReads() const { return memReads_; }
    std::uint64_t memoryWrites() const { return memWrites_; }

    /** Distribution of L1 read-miss penalties in CPU cycles
     *  (2-cycle linear buckets, 0..80, overflow beyond). */
    const stats::Histogram &
    missPenaltyHistogram() const
    {
        return missPenaltyHist_;
    }
    /** @} */

  private:
    /**
     * Apply one CPU reference; advances now_ when timed.
     *
     * Defined inline below the class: the counter updates and the
     * L1 hit fast paths then inline straight into the replay loops,
     * so the ~90% of references that hit in L1 never leave the
     * loop body. Misses and policy corner cases fall through to the
     * out-of-line handleRefSlow().
     */
    void handleRef(const trace::MemRef &ref, bool timed);

    /** Everything past the L1 fast paths (miss machinery, stores
     *  that leave L1, timing of both). */
    void handleRefSlow(const trace::MemRef &ref, bool timed,
                       cache::Cache *l1, Tick l1_cycle);

    /** Feed the solo co-simulation arrays (out of the hot path). */
    void soloReplay(const trace::MemRef &ref);

    /**
     * Read an upstream block from downstream level @p i (i ==
     * levels_.size() addresses main memory).
     * @return tick at which the block is fully delivered.
     */
    Tick downstreamRead(std::size_t i, Addr addr,
                        std::uint64_t bytes, Tick start,
                        bool count_read, bool timed);

    /**
     * Queue a write (victim write-back or forwarded store) toward
     * level @p i, applying write-around at levels that miss.
     * @return tick at which the requester may proceed.
     */
    Tick queueDownstreamWrite(std::size_t i, Addr base,
                              std::uint64_t bytes, Tick start,
                              bool timed);

    /** Fan a miss outcome's fills and write-backs downstream. */
    Tick fillFromBelow(std::size_t i,
                       const cache::AccessOutcome &outcome,
                       std::uint64_t up_block_bytes, Tick start,
                       bool count_read, bool timed);

    /** @{ @name Per-level timing helpers */
    Tick cacheCycleTicks(std::size_t i) const;
    Tick readHitService(std::size_t i,
                        std::uint64_t up_bytes) const;
    Tick tagCheckTicks(std::size_t i) const;
    Tick writeService(std::size_t i, std::uint64_t bytes) const;
    /** @} */

    void resetAllCounts();

    /** References pulled per nextBatch() call when draining a
     *  TraceSource (an 8 KB stack buffer — big enough to amortize
     *  the virtual call, small enough to stay cache-resident). */
    static constexpr std::size_t kReplayBatch = 512;

    HierarchyParams params_;
    Tick cpuCycle_;
    Tick l1iCycle_ = 0;
    Tick l1dCycle_ = 0;
    bool fastHit_ = true;
    /** @{ @name Hit-path tick constants: the cycles an L1 hit adds
     *  beyond the base instruction cycle, precomputed so the inline
     *  fast paths never touch CacheParams. */
    Tick l1iReadExtra_ = 0; //!< (readCycles-1) * cycle, I-side
    Tick l1dReadExtra_ = 0; //!< (readCycles-1) * cycle, D-side
    Tick l1dWriteExtra_ = 0; //!< (writeCycles-1) * cycle, D-side
    /** @} */
    /** Exact cpuCycle_ rounding without a divide per miss/store. */
    FixedDivisor cpuCycleDiv_;
    /** @{ @name Per-level tick constants, precomputed so the miss
     *  path never converts cycleNs (a double) at access time. */
    std::vector<Tick> levelCycleTicks_;
    std::vector<Tick> levelTagCheckTicks_;
    std::vector<Tick> levelWriteTicks_; //!< writeCycles * cycle
    /** @} */

    std::unique_ptr<cache::Cache> l1i_;
    std::unique_ptr<cache::Cache> l1d_; //!< unified L1 if !splitL1
    std::vector<std::unique_ptr<cache::Cache>> levels_;
    std::vector<std::unique_ptr<cache::Cache>> solo_;
    std::vector<mem::Bus> buses_; //!< buses_[i] feeds levels_[i];
                                  //!< back() is the backplane
    std::vector<std::unique_ptr<mem::WriteBuffer>> wb_;
    mem::MainMemory memory_;

    Tick now_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t ifetches_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t refsRun_ = 0;

    std::vector<std::uint64_t> readReqs_;
    std::vector<std::uint64_t> readMisses_;
    std::uint64_t memReads_ = 0;
    std::uint64_t memWrites_ = 0;

    Tick l1ReadMissStallTicks_ = 0;
    std::uint64_t l1ReadMissCount_ = 0;

    /** @{ @name Cycle attribution (breakdown invariant: the five
     *  buckets sum to now_). */
    Tick baseTicks_ = 0;
    Tick storeWriteHitTicks_ = 0;
    Tick readStallCacheTicks_ = 0;
    Tick readStallMemoryTicks_ = 0;
    Tick storeStallTicks_ = 0;
    /** @} */

    stats::Group statsGroup_{"hier"};
    stats::Histogram missPenaltyHist_ = stats::Histogram::linear(
        &statsGroup_, "l1MissPenalty",
        "L1 read-miss penalty (CPU cycles)", 0.0, 2.0, 40);

    /** Boundary-traffic sink; nullptr when not recording. */
    std::vector<BoundaryOp> *boundaryRec_ = nullptr;

    cache::AccessOutcome l1Outcome_; //!< reused per reference
    /** One buffer per downstream level: the recursion at level i
     *  iterates its own buffer while deeper calls use theirs. */
    std::vector<cache::AccessOutcome> levelOutcomes_;
    /** Separate buffers for the downstream-write Allocate path so
     *  a victim allocation never clobbers a read in flight. */
    std::vector<cache::AccessOutcome> victimOutcomes_;
    cache::AccessOutcome soloOutcome_; //!< reused per solo access
};

inline void
HierarchySimulator::handleRef(const trace::MemRef &ref, bool timed)
{
    cache::Cache *l1 = l1d_.get();
    Tick l1_cycle = l1dCycle_;
    Tick read_extra = l1dReadExtra_;

    if (ref.isInst()) {
        ++instructions_;
        ++ifetches_;
        if (timed) {
            now_ += cpuCycle_;
            baseTicks_ += cpuCycle_;
        }
        if (params_.splitL1) {
            l1 = l1i_.get();
            l1_cycle = l1iCycle_;
            read_extra = l1iReadExtra_;
        }
    } else if (ref.type == trace::RefType::Load) {
        ++loads_;
    } else {
        ++stores_;
    }

    // Solo co-simulation sees the raw CPU stream.
    if (!solo_.empty())
        soloReplay(ref);

    // The hot path: an L1 hit (the ~95% case at the paper's base
    // miss ratios) is one inline SoA probe plus a recency touch —
    // no AccessOutcome, no downstream machinery. Bit-exact with the
    // generic path (golden-tested); misses, write-through stores
    // and boundary cases fall through unchanged.
    if (fastHit_) {
        if (ref.isRead()) {
            if (l1->tryReadHit(ref)) {
                if (timed) {
                    now_ += read_extra;
                    readStallCacheTicks_ += read_extra;
                }
                return;
            }
        } else if (l1->tryStoreHit(ref)) {
            // A write-back store hit completes locally (stores
            // always address the D-side): same timing as the
            // generic hit-and-no-forward arm.
            if (timed) {
                now_ += l1dWriteExtra_;
                storeWriteHitTicks_ += l1dWriteExtra_;
            }
            return;
        }
    }

    handleRefSlow(ref, timed, l1, l1_cycle);
}

/**
 * Number of leading downstream levels of @p a and @p b that evolve
 * identical functional state under the same boundary traffic
 * (timing-only fields — cycle times, bus widths, write-buffer
 * depth — are ignored).
 */
std::size_t sharedFunctionalPrefix(const HierarchyParams &a,
                                   const HierarchyParams &b);

/**
 * True when a warm snapshot taken on a machine shaped like @p a is
 * reusable by one shaped like @p b: same L1 organization (split
 * and per-side functional parameters) and no solo co-simulation on
 * either side. The reusable depth is sharedFunctionalPrefix().
 */
bool warmCompatible(const HierarchyParams &a,
                    const HierarchyParams &b);

} // namespace hier
} // namespace mlc

#endif // MLC_HIER_HIERARCHY_HH
