/**
 * @file
 * The multi-level cache hierarchy timing simulator — the paper's
 * measurement apparatus.
 *
 * Model (Section 2 of the paper):
 *  - A RISC-like CPU issues one instruction fetch per cycle plus at
 *    most one data reference in the same cycle. Read hits in L1 are
 *    fully pipelined; an L1 write hit takes the L1's write time
 *    (2 cycles in the base machine, i.e. one stall cycle).
 *  - An L1 read miss stalls the CPU until the entire L1 block
 *    arrives from the next level; a miss at the last cache level
 *    stalls it until the whole block arrives from main memory.
 *  - Between every pair of adjacent levels sits a write buffer
 *    (default 4 entries) through which dirty victims and forwarded
 *    stores drain; demand reads have priority over unstarted
 *    buffered writes but wait for writes in progress and for
 *    buffered writes that overlap the read.
 *  - Main memory has read/write operation times and a refresh gap
 *    between successive operations.
 *
 * Simplifications (documented in DESIGN.md): fills do not charge
 * extra array occupancy at the level being filled, and victim
 * write-backs / forwarded stores that miss in an intermediate level
 * are passed around it (write-around) rather than allocating — the
 * paper's write-back L1 with ample buffering makes write effects
 * "mostly hidden" either way.
 *
 * Because reads block the CPU, the whole machine is exact under a
 * busy-until schedule: there is no event queue, and simulation
 * costs a few hundred instructions per reference.
 */

#ifndef MLC_HIER_HIERARCHY_HH
#define MLC_HIER_HIERARCHY_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "hier/hierarchy_config.hh"
#include "hier/results.hh"
#include "mem/bus.hh"
#include "mem/main_memory.hh"
#include "mem/timing.hh"
#include "mem/write_buffer.hh"
#include "stats/stats.hh"
#include "trace/source.hh"

namespace mlc {
namespace hier {

/** Trace-driven, cycle-accounting hierarchy simulator. */
class HierarchySimulator
{
  public:
    /** @param params finalized (or finalizable) configuration. */
    explicit HierarchySimulator(HierarchyParams params);

    /**
     * Run @p refs references functionally (tags update, no timing,
     * no statistics kept afterwards) to take the caches out of the
     * cold-start region, as the paper's methodology requires. Must
     * precede run(); counters are zeroed on return.
     */
    std::uint64_t warmUp(trace::TraceSource &source,
                         std::uint64_t refs);

    /**
     * Simulate with full timing.
     * @return number of references consumed.
     */
    std::uint64_t
    run(trace::TraceSource &source,
        std::uint64_t max_refs =
            std::numeric_limits<std::uint64_t>::max());

    /** Measurements over everything run() has simulated. */
    SimResults results() const;

    /** @{ @name Component access (tests, stats reporting) */
    const HierarchyParams &params() const { return params_; }
    const cache::Cache &l1i() const { return *l1i_; }
    const cache::Cache &l1d() const { return *l1d_; }
    std::size_t levelCount() const { return levels_.size(); }
    const cache::Cache &level(std::size_t i) const
    {
        return *levels_[i];
    }
    const mem::WriteBuffer &writeBuffer(std::size_t i) const
    {
        return *wb_[i];
    }
    Tick now() const { return now_; }
    std::uint64_t memoryReads() const { return memReads_; }
    std::uint64_t memoryWrites() const { return memWrites_; }

    /** Distribution of L1 read-miss penalties in CPU cycles
     *  (2-cycle linear buckets, 0..80, overflow beyond). */
    const stats::Histogram &
    missPenaltyHistogram() const
    {
        return missPenaltyHist_;
    }
    /** @} */

  private:
    /** Apply one CPU reference; advances now_ when timed. */
    void handleRef(const trace::MemRef &ref, bool timed);

    /**
     * Read an upstream block from downstream level @p i (i ==
     * levels_.size() addresses main memory).
     * @return tick at which the block is fully delivered.
     */
    Tick downstreamRead(std::size_t i, Addr addr,
                        std::uint64_t bytes, Tick start,
                        bool count_read, bool timed);

    /**
     * Queue a write (victim write-back or forwarded store) toward
     * level @p i, applying write-around at levels that miss.
     * @return tick at which the requester may proceed.
     */
    Tick queueDownstreamWrite(std::size_t i, Addr base,
                              std::uint64_t bytes, Tick start,
                              bool timed);

    /** Fan a miss outcome's fills and write-backs downstream. */
    Tick fillFromBelow(std::size_t i,
                       const cache::AccessOutcome &outcome,
                       std::uint64_t up_block_bytes, Tick start,
                       bool count_read, bool timed);

    /** @{ @name Per-level timing helpers */
    Tick cacheCycleTicks(std::size_t i) const;
    Tick readHitService(std::size_t i,
                        std::uint64_t up_bytes) const;
    Tick tagCheckTicks(std::size_t i) const;
    Tick writeService(std::size_t i, std::uint64_t bytes) const;
    /** @} */

    void resetAllCounts();

    HierarchyParams params_;
    Tick cpuCycle_;
    Tick l1iCycle_ = 0;
    Tick l1dCycle_ = 0;

    std::unique_ptr<cache::Cache> l1i_;
    std::unique_ptr<cache::Cache> l1d_; //!< unified L1 if !splitL1
    std::vector<std::unique_ptr<cache::Cache>> levels_;
    std::vector<std::unique_ptr<cache::Cache>> solo_;
    std::vector<mem::Bus> buses_; //!< buses_[i] feeds levels_[i];
                                  //!< back() is the backplane
    std::vector<std::unique_ptr<mem::WriteBuffer>> wb_;
    mem::MainMemory memory_;

    Tick now_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t ifetches_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t refsRun_ = 0;

    std::vector<std::uint64_t> readReqs_;
    std::vector<std::uint64_t> readMisses_;
    std::uint64_t memReads_ = 0;
    std::uint64_t memWrites_ = 0;

    Tick l1ReadMissStallTicks_ = 0;
    std::uint64_t l1ReadMissCount_ = 0;

    /** @{ @name Cycle attribution (breakdown invariant: the five
     *  buckets sum to now_). */
    Tick baseTicks_ = 0;
    Tick storeWriteHitTicks_ = 0;
    Tick readStallCacheTicks_ = 0;
    Tick readStallMemoryTicks_ = 0;
    Tick storeStallTicks_ = 0;
    /** @} */

    stats::Group statsGroup_{"hier"};
    stats::Histogram missPenaltyHist_ = stats::Histogram::linear(
        &statsGroup_, "l1MissPenalty",
        "L1 read-miss penalty (CPU cycles)", 0.0, 2.0, 40);

    cache::AccessOutcome l1Outcome_; //!< reused per reference
    /** One buffer per downstream level: the recursion at level i
     *  iterates its own buffer while deeper calls use theirs. */
    std::vector<cache::AccessOutcome> levelOutcomes_;
    /** Separate buffers for the downstream-write Allocate path so
     *  a victim allocation never clobbers a read in flight. */
    std::vector<cache::AccessOutcome> victimOutcomes_;
    cache::AccessOutcome soloOutcome_; //!< reused per solo access
};

} // namespace hier
} // namespace mlc

#endif // MLC_HIER_HIERARCHY_HH
