#include "hier/hierarchy_config.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/units.hh"

namespace mlc {
namespace hier {

void
HierarchyParams::finalize()
{
    if (cpuCycleNs <= 0.0)
        mlc_fatal("CPU cycle time must be positive");

    if (splitL1) {
        l1i.finalize();
        l1d.finalize();
    } else {
        l1d.finalize();
    }
    for (auto &level : levels)
        level.finalize();

    if (busWidthWords.size() != levels.size() + 1)
        mlc_fatal("need ", levels.size() + 1,
                  " bus widths (one per downstream level plus the "
                  "memory backplane), got ",
                  busWidthWords.size());
    for (auto w : busWidthWords)
        if (w == 0)
            mlc_fatal("bus width must be non-zero");

    if (writeBufferDepth == 0)
        mlc_fatal("write buffer depth must be non-zero");
    if (backplaneCycleNs < 0.0)
        mlc_fatal("backplane cycle time must be non-negative");

    // Block sizes must not shrink downstream: a level's fill
    // request must fit within one block of the level below it.
    std::uint32_t up_block = splitL1
                                 ? std::max(l1i.geometry.blockBytes,
                                            l1d.geometry.blockBytes)
                                 : l1d.geometry.blockBytes;
    for (const auto &level : levels) {
        if (level.geometry.blockBytes < up_block)
            mlc_fatal(level.name, ": block size ",
                      level.geometry.blockBytes,
                      " smaller than upstream block ", up_block);
        up_block = level.geometry.blockBytes;
    }
}

HierarchyParams
HierarchyParams::baseMachine()
{
    HierarchyParams p;
    p.cpuCycleNs = 10.0;
    p.splitL1 = true;

    p.l1i.name = "l1i";
    p.l1i.geometry.sizeBytes = 2 * 1024;
    p.l1i.geometry.blockBytes = 16;
    p.l1i.geometry.assoc = 1;
    p.l1i.cycleNs = 10.0;
    p.l1i.readCycles = 1;
    p.l1i.writeCycles = 2;

    p.l1d = p.l1i;
    p.l1d.name = "l1d";

    cache::CacheParams l2;
    l2.name = "l2";
    l2.geometry.sizeBytes = 512 * 1024;
    l2.geometry.blockBytes = 32;
    l2.geometry.assoc = 1;
    l2.cycleNs = 30.0;
    l2.readCycles = 1;
    l2.writeCycles = 2;
    p.levels.push_back(l2);

    p.busWidthWords = {4, 4};
    p.memory = mem::MainMemoryParams{};
    p.backplaneCycleNs = 30.0;
    p.writeBufferDepth = 4;
    return p;
}

HierarchyParams
HierarchyParams::withL2(std::uint64_t size_bytes,
                        std::uint32_t cpu_cycles,
                        std::uint32_t assoc) const
{
    HierarchyParams p = *this;
    if (p.levels.empty())
        mlc_fatal("withL2 on a hierarchy without an L2");
    p.levels[0].geometry.sizeBytes = size_bytes;
    p.levels[0].geometry.assoc = assoc;
    p.levels[0].cycleNs =
        p.cpuCycleNs * static_cast<double>(cpu_cycles);
    return p;
}

HierarchyParams
HierarchyParams::withL1Total(std::uint64_t total_bytes) const
{
    HierarchyParams p = *this;
    if (!p.splitL1)
        mlc_fatal("withL1Total expects a split L1");
    p.l1i.geometry.sizeBytes = total_bytes / 2;
    p.l1d.geometry.sizeBytes = total_bytes / 2;
    return p;
}

std::string
HierarchyParams::summary() const
{
    std::ostringstream os;
    os << "cpu " << cpuCycleNs << "ns";
    if (splitL1) {
        os << ", L1 " << formatSize(l1i.geometry.sizeBytes) << "I+"
           << formatSize(l1d.geometry.sizeBytes) << "D";
    } else {
        os << ", L1 " << formatSize(l1d.geometry.sizeBytes)
           << " unified";
    }
    int n = 2;
    for (const auto &level : levels) {
        os << ", L" << n++ << " "
           << formatSize(level.geometry.sizeBytes) << "/"
           << level.geometry.assoc << "-way/"
           << level.cycleNs << "ns";
    }
    os << ", mem " << memory.readNs << "ns";
    return os.str();
}

} // namespace hier
} // namespace mlc
