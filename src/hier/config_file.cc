#include "hier/config_file.hh"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/logging.hh"
#include "util/str.hh"
#include "util/units.hh"

namespace mlc {
namespace hier {

namespace {

/** Parsed key/value pairs with consumption tracking. */
class KeyValues
{
  public:
    void
    add(const std::string &key, const std::string &value,
        std::uint64_t line)
    {
        if (pairs_.count(key))
            mlc_fatal("config line ", line, ": duplicate key '",
                      key, "'");
        pairs_[key] = value;
    }

    bool
    has(const std::string &key) const
    {
        return pairs_.count(key) != 0;
    }

    /** Fetch and mark consumed; empty optional semantics via has(). */
    std::string
    take(const std::string &key)
    {
        consumed_.insert(pairs_.find(key)->first);
        return pairs_.at(key);
    }

    /** Any key never consumed is a typo: report and die. */
    void
    checkAllConsumed() const
    {
        for (const auto &[key, value] : pairs_) {
            if (!consumed_.count(key))
                mlc_fatal("config: unknown key '", key, "'");
        }
    }

    /** True if any key starts with the given prefix. */
    bool
    hasPrefix(const std::string &prefix) const
    {
        auto it = pairs_.lower_bound(prefix);
        return it != pairs_.end() && startsWith(it->first, prefix);
    }

  private:
    std::map<std::string, std::string> pairs_;
    std::set<std::string> consumed_;
};

std::uint64_t
takeSize(KeyValues &kv, const std::string &key, std::uint64_t dflt)
{
    if (!kv.has(key))
        return dflt;
    return parseSizeOrFatal(kv.take(key), key);
}

double
takeDuration(KeyValues &kv, const std::string &key, double dflt)
{
    if (!kv.has(key))
        return dflt;
    return parseDurationOrFatal(kv.take(key), key);
}

std::uint64_t
takeUnsigned(KeyValues &kv, const std::string &key,
             std::uint64_t dflt)
{
    if (!kv.has(key))
        return dflt;
    const std::string text = kv.take(key);
    unsigned long long v = 0;
    if (!parseUnsigned(text, v))
        mlc_fatal("config: bad integer for ", key, ": '", text, "'");
    return v;
}

bool
takeBool(KeyValues &kv, const std::string &key, bool dflt)
{
    if (!kv.has(key))
        return dflt;
    const std::string text = toLower(kv.take(key));
    if (text == "true" || text == "1" || text == "yes")
        return true;
    if (text == "false" || text == "0" || text == "no")
        return false;
    mlc_fatal("config: bad boolean for ", key, ": '", text, "'");
}

void
applyCacheKeys(KeyValues &kv, const std::string &prefix,
               cache::CacheParams &c)
{
    c.geometry.sizeBytes =
        takeSize(kv, prefix + ".size", c.geometry.sizeBytes);
    c.geometry.blockBytes = static_cast<std::uint32_t>(
        takeSize(kv, prefix + ".block", c.geometry.blockBytes));
    c.geometry.assoc = static_cast<std::uint32_t>(
        takeUnsigned(kv, prefix + ".assoc", c.geometry.assoc));
    c.fetchBytes = static_cast<std::uint32_t>(
        takeSize(kv, prefix + ".fetch", c.fetchBytes));
    c.cycleNs = takeDuration(kv, prefix + ".cycle", c.cycleNs);
    c.readCycles = static_cast<std::uint32_t>(
        takeUnsigned(kv, prefix + ".read_cycles", c.readCycles));
    c.writeCycles = static_cast<std::uint32_t>(
        takeUnsigned(kv, prefix + ".write_cycles", c.writeCycles));
    c.prefetchNextBlock =
        takeBool(kv, prefix + ".prefetch", c.prefetchNextBlock);

    if (kv.has(prefix + ".write_policy")) {
        const std::string p =
            toLower(kv.take(prefix + ".write_policy"));
        if (p == "write-back" || p == "writeback" || p == "wb")
            c.writePolicy = cache::WritePolicy::WriteBack;
        else if (p == "write-through" || p == "writethrough" ||
                 p == "wt")
            c.writePolicy = cache::WritePolicy::WriteThrough;
        else
            mlc_fatal("config: bad write policy '", p, "'");
    }
    if (kv.has(prefix + ".alloc_policy")) {
        const std::string p =
            toLower(kv.take(prefix + ".alloc_policy"));
        if (p == "write-allocate" || p == "allocate" || p == "wa")
            c.allocPolicy = cache::AllocPolicy::WriteAllocate;
        else if (p == "no-write-allocate" || p == "no-allocate" ||
                 p == "nwa")
            c.allocPolicy = cache::AllocPolicy::NoWriteAllocate;
        else
            mlc_fatal("config: bad allocation policy '", p, "'");
    }
    if (kv.has(prefix + ".victim_miss")) {
        const std::string p =
            toLower(kv.take(prefix + ".victim_miss"));
        if (p == "around")
            c.downstreamWriteMiss =
                cache::DownstreamWriteMissPolicy::Around;
        else if (p == "allocate")
            c.downstreamWriteMiss =
                cache::DownstreamWriteMissPolicy::Allocate;
        else
            mlc_fatal("config: bad victim-miss policy '", p, "'");
    }
    if (kv.has(prefix + ".repl")) {
        const std::string p = toLower(kv.take(prefix + ".repl"));
        if (p == "lru")
            c.replPolicy = cache::ReplPolicy::LRU;
        else if (p == "fifo")
            c.replPolicy = cache::ReplPolicy::FIFO;
        else if (p == "random")
            c.replPolicy = cache::ReplPolicy::Random;
        else
            mlc_fatal("config: bad replacement policy '", p, "'");
    }
}

} // namespace

HierarchyParams
parseConfig(std::istream &is)
{
    KeyValues kv;
    std::string text;
    std::uint64_t line_no = 0;
    while (std::getline(is, text)) {
        ++line_no;
        const std::string stripped = trim(text);
        if (stripped.empty() || stripped[0] == '#')
            continue;
        const auto eq = stripped.find('=');
        if (eq == std::string::npos)
            mlc_fatal("config line ", line_no,
                      ": expected key = value, got '", stripped,
                      "'");
        const std::string key =
            toLower(trim(stripped.substr(0, eq)));
        const std::string value = trim(stripped.substr(eq + 1));
        if (key.empty() || value.empty())
            mlc_fatal("config line ", line_no,
                      ": empty key or value");
        kv.add(key, value, line_no);
    }

    HierarchyParams p = HierarchyParams::baseMachine();

    p.cpuCycleNs = takeDuration(kv, "cpu.cycle", p.cpuCycleNs);
    p.splitL1 = takeBool(kv, "l1.split", p.splitL1);
    if (p.splitL1) {
        applyCacheKeys(kv, "l1i", p.l1i);
        applyCacheKeys(kv, "l1d", p.l1d);
    } else {
        p.l1d.name = "l1";
        applyCacheKeys(kv, "l1", p.l1d);
    }

    // Downstream levels: l2 is present in the base machine; deeper
    // levels are appended for each contiguous lN section found.
    applyCacheKeys(kv, "l2", p.levels[0]);
    for (int n = 3; kv.hasPrefix("l" + std::to_string(n) + ".");
         ++n) {
        cache::CacheParams deeper = p.levels.back();
        deeper.name = "l" + std::to_string(n);
        applyCacheKeys(kv, deeper.name, deeper);
        p.levels.push_back(deeper);
        p.busWidthWords.push_back(p.busWidthWords.back());
    }

    for (std::size_t i = 0; i < p.levels.size(); ++i) {
        const std::string key =
            "bus.l" + std::to_string(i + 2) + ".words";
        p.busWidthWords[i] = static_cast<std::uint32_t>(
            takeUnsigned(kv, key, p.busWidthWords[i]));
    }
    p.busWidthWords.back() = static_cast<std::uint32_t>(
        takeUnsigned(kv, "bus.memory.words",
                     p.busWidthWords.back()));

    p.backplaneCycleNs = takeDuration(kv, "bus.memory.cycle",
                                      p.backplaneCycleNs);
    p.memory.readNs =
        takeDuration(kv, "memory.read", p.memory.readNs);
    p.memory.writeNs =
        takeDuration(kv, "memory.write", p.memory.writeNs);
    p.memory.interOpGapNs =
        takeDuration(kv, "memory.gap", p.memory.interOpGapNs);

    p.writeBufferDepth = takeUnsigned(kv, "wbuffer.depth",
                                      p.writeBufferDepth);
    p.measureSolo = takeBool(kv, "measure.solo", p.measureSolo);

    kv.checkAllConsumed();
    p.finalize();
    return p;
}

HierarchyParams
parseConfigFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        mlc_fatal("cannot open config file '", path, "'");
    return parseConfig(is);
}

void
writeConfig(std::ostream &os, const HierarchyParams &params)
{
    os << "cpu.cycle = " << params.cpuCycleNs << "ns\n";
    os << "l1.split = " << (params.splitL1 ? "true" : "false")
       << "\n";

    auto emitCache = [&os](const std::string &prefix,
                           const cache::CacheParams &c) {
        os << prefix << ".size = " << c.geometry.sizeBytes << "\n"
           << prefix << ".block = " << c.geometry.blockBytes << "\n"
           << prefix << ".assoc = " << c.geometry.assoc << "\n"
           << prefix << ".cycle = " << c.cycleNs << "ns\n"
           << prefix << ".read_cycles = " << c.readCycles << "\n"
           << prefix << ".write_cycles = " << c.writeCycles << "\n"
           << prefix << ".write_policy = "
           << cache::writePolicyName(c.writePolicy) << "\n"
           << prefix << ".alloc_policy = "
           << cache::allocPolicyName(c.allocPolicy) << "\n"
           << prefix << ".repl = "
           << cache::replPolicyName(c.replPolicy) << "\n"
           << prefix << ".victim_miss = "
           << cache::downstreamWriteMissPolicyName(
                  c.downstreamWriteMiss)
           << "\n";
        if (c.fetchBytes != 0 &&
            c.fetchBytes != c.geometry.blockBytes)
            os << prefix << ".fetch = " << c.fetchBytes << "\n";
        if (c.prefetchNextBlock)
            os << prefix << ".prefetch = true\n";
    };

    if (params.splitL1) {
        emitCache("l1i", params.l1i);
        emitCache("l1d", params.l1d);
    } else {
        emitCache("l1", params.l1d);
    }
    for (std::size_t i = 0; i < params.levels.size(); ++i)
        emitCache("l" + std::to_string(i + 2), params.levels[i]);

    for (std::size_t i = 0; i < params.levels.size(); ++i)
        os << "bus.l" << i + 2
           << ".words = " << params.busWidthWords[i] << "\n";
    os << "bus.memory.words = " << params.busWidthWords.back()
       << "\n";
    if (params.backplaneCycleNs > 0.0)
        os << "bus.memory.cycle = " << params.backplaneCycleNs
           << "ns\n";

    os << "memory.read = " << params.memory.readNs << "ns\n"
       << "memory.write = " << params.memory.writeNs << "ns\n"
       << "memory.gap = " << params.memory.interOpGapNs << "ns\n"
       << "wbuffer.depth = " << params.writeBufferDepth << "\n";
    if (params.measureSolo)
        os << "measure.solo = true\n";
}

} // namespace hier
} // namespace mlc
