#include "hier/hierarchy.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mlc {
namespace hier {

namespace {

/** Seed offsets so each component's Random policy decorrelates. */
constexpr std::uint64_t kCacheSeedBase = 0x1234abcdULL;

HierarchyParams
finalized(HierarchyParams p)
{
    p.finalize();
    return p;
}

} // namespace

HierarchySimulator::HierarchySimulator(HierarchyParams params)
    : params_(finalized(std::move(params))),
      cpuCycle_(nsToTicks(params_.cpuCycleNs)),
      memory_(params_.memory)
{

    if (params_.splitL1) {
        l1i_ = std::make_unique<cache::Cache>(params_.l1i,
                                              kCacheSeedBase);
        l1iCycle_ = nsToTicks(params_.l1i.cycleNs);
    }
    l1d_ = std::make_unique<cache::Cache>(params_.l1d,
                                          kCacheSeedBase + 1);
    l1dCycle_ = nsToTicks(params_.l1d.cycleNs);

    for (std::size_t i = 0; i < params_.levels.size(); ++i) {
        levels_.push_back(std::make_unique<cache::Cache>(
            params_.levels[i], kCacheSeedBase + 2 + i));
        if (params_.measureSolo)
            solo_.push_back(std::make_unique<cache::Cache>(
                params_.levels[i], kCacheSeedBase + 100 + i));
    }

    // Bus i feeds levels_[i] and cycles at that level's rate; the
    // backplane cycles at the rate of the deepest cache (or the CPU
    // when there are no downstream caches).
    for (std::size_t i = 0; i < params_.levels.size(); ++i) {
        buses_.emplace_back(params_.busWidthWords[i],
                            nsToTicks(params_.levels[i].cycleNs));
    }
    const Tick backplane_cycle =
        params_.backplaneCycleNs > 0.0
            ? nsToTicks(params_.backplaneCycleNs)
            : (params_.levels.empty()
                   ? cpuCycle_
                   : nsToTicks(params_.levels.back().cycleNs));
    buses_.emplace_back(params_.busWidthWords.back(),
                        backplane_cycle);

    for (std::size_t i = 0; i <= params_.levels.size(); ++i)
        wb_.push_back(std::make_unique<mem::WriteBuffer>(
            params_.writeBufferDepth));

    readReqs_.assign(levels_.size(), 0);
    readMisses_.assign(levels_.size(), 0);
    levelOutcomes_.resize(levels_.size());
    victimOutcomes_.resize(levels_.size());

    cpuCycleDiv_ = FixedDivisor(cpuCycle_);
    if (params_.splitL1)
        l1iReadExtra_ = (params_.l1i.readCycles - 1) * l1iCycle_;
    l1dReadExtra_ = (params_.l1d.readCycles - 1) * l1dCycle_;
    l1dWriteExtra_ = (params_.l1d.writeCycles - 1) * l1dCycle_;
    for (std::size_t i = 0; i < params_.levels.size(); ++i) {
        const Tick cycle = nsToTicks(params_.levels[i].cycleNs);
        levelCycleTicks_.push_back(cycle);
        levelTagCheckTicks_.push_back(
            params_.levels[i].readCycles * cycle);
        levelWriteTicks_.push_back(
            params_.levels[i].writeCycles * cycle);
    }
}

Tick
HierarchySimulator::cacheCycleTicks(std::size_t i) const
{
    return levelCycleTicks_[i];
}

Tick
HierarchySimulator::tagCheckTicks(std::size_t i) const
{
    return levelTagCheckTicks_[i];
}

Tick
HierarchySimulator::readHitService(std::size_t i,
                                   std::uint64_t up_bytes) const
{
    // The first bus beat overlaps the array read; wider upstream
    // blocks add beats at the bus rate.
    const std::uint64_t beats = buses_[i].beatsFor(up_bytes);
    return tagCheckTicks(i) +
           (beats - 1) * buses_[i].cycleTime();
}

Tick
HierarchySimulator::writeService(std::size_t i,
                                 std::uint64_t bytes) const
{
    const std::uint64_t beats = buses_[i].beatsFor(bytes);
    return levelWriteTicks_[i] +
           (beats - 1) * buses_[i].cycleTime();
}

Tick
HierarchySimulator::downstreamRead(std::size_t i, Addr addr,
                                   std::uint64_t bytes, Tick start,
                                   bool count_read, bool timed)
{
    if (i == levels_.size()) {
        if (boundaryRec_)
            boundaryRec_->push_back(
                {addr, static_cast<std::uint32_t>(bytes),
                 BoundaryOp::Kind::Read, count_read});
        ++memReads_;
        if (!timed)
            return start;
        const Tick service =
            memory_.readService(buses_.back(), bytes);
        const mem::WriteBuffer::Op op{
            service, memory_.occupancyFor(service)};
        return wb_[i]->read(start, addr, bytes, op).done;
    }

    cache::Cache &c = *levels_[i];
    cache::AccessOutcome &outcome = levelOutcomes_[i];
    if (count_read)
        ++readReqs_[i];

    trace::MemRef req = trace::makeLoad(addr);
    c.access(req, outcome);

    if (outcome.hit) {
        if (!timed)
            return start;
        const Tick service = readHitService(i, bytes);
        const mem::WriteBuffer::Op op{service, service};
        return wb_[i]->read(start, addr, bytes, op).done;
    }

    if (count_read)
        ++readMisses_[i];

    Tick miss_known = start;
    if (timed) {
        const Tick tag = tagCheckTicks(i);
        const mem::WriteBuffer::Op op{tag, tag};
        miss_known = wb_[i]->read(start, addr, bytes, op).done;
    }
    return fillFromBelow(i + 1, outcome,
                         c.params().fillRequestBytes(), miss_known,
                         count_read, timed);
}

Tick
HierarchySimulator::fillFromBelow(std::size_t i,
                                  const cache::AccessOutcome &outcome,
                                  std::uint64_t up_block_bytes,
                                  Tick start, bool count_read,
                                  bool timed)
{
    // The demand block gates the requester; further fills of the
    // fetch group (and prefetches) proceed afterwards without
    // stalling it, but they do occupy the downstream timelines.
    Tick demand_ready = start;
    bool first = true;
    for (Addr fill : outcome.fills) {
        const Tick r = downstreamRead(i, fill, up_block_bytes,
                                      first ? start : demand_ready,
                                      count_read && first, timed);
        if (first) {
            demand_ready = r;
            first = false;
        }
    }

    Tick ready = demand_ready;
    for (const cache::WritebackReq &victim : outcome.writebacks) {
        const Tick proceed = queueDownstreamWrite(
            i, victim.base, victim.bytes, demand_ready, timed);
        ready = std::max(ready, proceed);
    }
    return ready;
}

Tick
HierarchySimulator::queueDownstreamWrite(std::size_t i, Addr base,
                                         std::uint64_t bytes,
                                         Tick start, bool timed)
{
    if (i == levels_.size()) {
        if (boundaryRec_)
            boundaryRec_->push_back(
                {base, static_cast<std::uint32_t>(bytes),
                 BoundaryOp::Kind::Write, false});
        ++memWrites_;
        if (!timed)
            return start;
        const Tick service =
            memory_.writeService(buses_.back(), bytes);
        const mem::WriteBuffer::Op op{
            service, memory_.occupancyFor(service)};
        return wb_[i]->queueWrite(start, base, bytes, op);
    }

    cache::Cache &c = *levels_[i];
    const bool hit = c.absorbWrite(base);
    if (!hit) {
        if (c.params().downstreamWriteMiss ==
            cache::DownstreamWriteMissPolicy::Around) {
            return queueDownstreamWrite(i + 1, base, bytes, start,
                                        timed);
        }
        // Allocate: fetch the enclosing block from below, install
        // it dirty, then complete the write locally. The fetch is
        // demand traffic on the lower timeline but does not stall
        // the original requester beyond the local queueing.
        cache::AccessOutcome &outcome = victimOutcomes_[i];
        c.absorbWriteAllocate(base, outcome);
        Tick fetched = start;
        for (Addr fill : outcome.fills)
            fetched = downstreamRead(
                i + 1, fill, c.params().fillRequestBytes(), start,
                false, timed);
        Tick proceed = fetched;
        if (timed) {
            const Tick service = writeService(i, bytes);
            const mem::WriteBuffer::Op op{service, service};
            proceed = wb_[i]->queueWrite(fetched, base, bytes, op);
        }
        for (const cache::WritebackReq &victim :
             outcome.writebacks)
            proceed = std::max(proceed,
                               queueDownstreamWrite(
                                   i + 1, victim.base,
                                   victim.bytes, fetched, timed));
        return timed ? proceed : start;
    }

    Tick proceed = start;
    if (timed) {
        const Tick service = writeService(i, bytes);
        const mem::WriteBuffer::Op op{service, service};
        proceed = wb_[i]->queueWrite(start, base, bytes, op);
    }
    if (c.params().writePolicy == cache::WritePolicy::WriteThrough) {
        proceed = std::max(
            proceed,
            queueDownstreamWrite(i + 1, base, bytes, start, timed));
    }
    return proceed;
}

void
HierarchySimulator::soloReplay(const trace::MemRef &ref)
{
    for (auto &solo : solo_)
        solo->access(ref, soloOutcome_);
}

void
HierarchySimulator::handleRefSlow(const trace::MemRef &ref,
                                  bool timed, cache::Cache *l1,
                                  Tick l1_cycle)
{
    l1->access(ref, l1Outcome_);
    const std::uint64_t l1_block = l1->params().fillRequestBytes();

    if (ref.isRead()) {
        if (l1Outcome_.hit) {
            if (timed) {
                const Tick extra =
                    (l1->params().readCycles - 1) * l1_cycle;
                now_ += extra;
                readStallCacheTicks_ += extra;
            }
            return;
        }
        ++l1ReadMissCount_;
        const Tick miss_start = now_;
        const std::uint64_t mem_reads_before = memReads_;
        const Tick ready = fillFromBelow(0, l1Outcome_, l1_block,
                                         now_, true, timed);
        if (timed) {
            l1ReadMissStallTicks_ += ready - miss_start;
            missPenaltyHist_.sample(
                static_cast<double>(ready - miss_start) /
                static_cast<double>(cpuCycle_));
            const Tick before = now_;
            now_ = cpuCycleDiv_.roundUp(ready);
            // Attribute the whole stall (including rounding) to
            // memory if the demand path reached main memory.
            if (memReads_ > mem_reads_before)
                readStallMemoryTicks_ += now_ - before;
            else
                readStallCacheTicks_ += now_ - before;
        }
        return;
    }

    // Store.
    const Tick write_extra =
        (l1->params().writeCycles - 1) * l1_cycle;
    if (l1Outcome_.hit && !l1Outcome_.forwardWrite) {
        if (timed) {
            now_ += write_extra;
            storeWriteHitTicks_ += write_extra;
        }
        return;
    }

    Tick ready = now_;
    if (!l1Outcome_.fills.empty() || !l1Outcome_.writebacks.empty())
        ready = fillFromBelow(0, l1Outcome_, l1_block, now_, false,
                              timed);
    if (l1Outcome_.forwardWrite) {
        const Addr word_base = ref.addr & ~Addr{3};
        const Tick proceed = queueDownstreamWrite(
            0, word_base, ref.size, ready, timed);
        ready = std::max(ready, proceed);
    }
    if (timed) {
        const Tick before = now_;
        now_ = cpuCycleDiv_.roundUp(ready) + write_extra;
        storeStallTicks_ += now_ - before - write_extra;
        storeWriteHitTicks_ += write_extra;
    }
}

std::uint64_t
HierarchySimulator::warmUp(trace::TraceSource &source,
                           std::uint64_t refs)
{
    trace::MemRef buf[kReplayBatch];
    std::uint64_t n = 0;
    while (n < refs) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(kReplayBatch, refs - n));
        const std::size_t got = source.nextBatch(buf, want);
        if (got == 0)
            break;
        for (std::size_t i = 0; i < got; ++i)
            handleRef(buf[i], false);
        n += got;
    }
    resetAllCounts();
    return n;
}

std::uint64_t
HierarchySimulator::warmUp(trace::RefSpan refs)
{
    for (const trace::MemRef &ref : refs)
        handleRef(ref, false);
    resetAllCounts();
    return refs.size;
}

std::uint64_t
HierarchySimulator::runFunctional(trace::RefSpan refs)
{
    for (const trace::MemRef &ref : refs)
        handleRef(ref, false);
    refsRun_ += refs.size;
    return refs.size;
}

std::uint64_t
HierarchySimulator::run(trace::TraceSource &source,
                        std::uint64_t max_refs)
{
    trace::MemRef buf[kReplayBatch];
    std::uint64_t n = 0;
    while (n < max_refs) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(kReplayBatch, max_refs - n));
        const std::size_t got = source.nextBatch(buf, want);
        if (got == 0)
            break;
        for (std::size_t i = 0; i < got; ++i)
            handleRef(buf[i], true);
        n += got;
    }
    refsRun_ += n;
    return n;
}

std::uint64_t
HierarchySimulator::run(trace::RefSpan refs)
{
    for (const trace::MemRef &ref : refs)
        handleRef(ref, true);
    refsRun_ += refs.size;
    return refs.size;
}

void
HierarchySimulator::resetAllCounts()
{
    instructions_ = 0;
    ifetches_ = 0;
    loads_ = 0;
    stores_ = 0;
    refsRun_ = 0;
    std::fill(readReqs_.begin(), readReqs_.end(), 0);
    std::fill(readMisses_.begin(), readMisses_.end(), 0);
    memReads_ = 0;
    memWrites_ = 0;
    l1ReadMissStallTicks_ = 0;
    l1ReadMissCount_ = 0;
    missPenaltyHist_.reset();
    baseTicks_ = 0;
    storeWriteHitTicks_ = 0;
    readStallCacheTicks_ = 0;
    readStallMemoryTicks_ = 0;
    storeStallTicks_ = 0;

    if (l1i_)
        l1i_->resetCounts();
    l1d_->resetCounts();
    for (auto &level : levels_)
        level->resetCounts();
    for (auto &solo : solo_)
        solo->resetCounts();
}

void
HierarchySimulator::captureWarmState(SnapshotArena &arena,
                                     WarmSnapshot &snap,
                                     std::size_t prefix_levels) const
{
    if (prefix_levels > levels_.size())
        mlc_panic("captureWarmState prefix depth ", prefix_levels,
                  " exceeds hierarchy depth ", levels_.size());
    if (!solo_.empty())
        mlc_panic("captureWarmState with solo co-simulation "
                  "active: solo arrays replay the raw CPU stream "
                  "and cannot be rebuilt from boundary traffic");
    snap.splitL1 = params_.splitL1;
    snap.prefixLevels = prefix_levels;
    if (l1i_)
        l1i_->captureState(arena, snap.l1i);
    l1d_->captureState(arena, snap.l1d);
    snap.levels.resize(prefix_levels);
    for (std::size_t i = 0; i < prefix_levels; ++i)
        levels_[i]->captureState(arena, snap.levels[i]);
    snap.instructions = instructions_;
    snap.ifetches = ifetches_;
    snap.loads = loads_;
    snap.stores = stores_;
    snap.refsRun = refsRun_;
    snap.l1ReadMissCount = l1ReadMissCount_;
    snap.readReqs.assign(readReqs_.begin(),
                         readReqs_.begin() +
                             static_cast<std::ptrdiff_t>(
                                 prefix_levels));
    snap.readMisses.assign(readMisses_.begin(),
                           readMisses_.begin() +
                               static_cast<std::ptrdiff_t>(
                                   prefix_levels));
}

void
HierarchySimulator::restoreWarmState(const SnapshotArena &arena,
                                     const WarmSnapshot &snap)
{
    if (snap.splitL1 != params_.splitL1)
        mlc_panic("restoreWarmState split-L1 mismatch: snapshot ",
                  snap.splitL1 ? "split" : "unified",
                  ", simulator ",
                  params_.splitL1 ? "split" : "unified");
    if (snap.prefixLevels > levels_.size())
        mlc_panic("restoreWarmState snapshot prefix depth ",
                  snap.prefixLevels, " exceeds hierarchy depth ",
                  levels_.size());
    if (!solo_.empty())
        mlc_panic("restoreWarmState with solo co-simulation "
                  "active");
    if (l1i_)
        l1i_->restoreState(arena, snap.l1i);
    l1d_->restoreState(arena, snap.l1d);
    for (std::size_t i = 0; i < snap.prefixLevels; ++i)
        levels_[i]->restoreState(arena, snap.levels[i]);
    instructions_ = snap.instructions;
    ifetches_ = snap.ifetches;
    loads_ = snap.loads;
    stores_ = snap.stores;
    refsRun_ = snap.refsRun;
    l1ReadMissCount_ = snap.l1ReadMissCount;
    for (std::size_t i = 0; i < snap.prefixLevels; ++i) {
        readReqs_[i] = snap.readReqs[i];
        readMisses_[i] = snap.readMisses[i];
    }
}

std::uint64_t
HierarchySimulator::replayBoundary(std::size_t level,
                                   const std::vector<BoundaryOp> &ops)
{
    if (level > levels_.size())
        mlc_panic("replayBoundary at level ", level,
                  " of a hierarchy with ", levels_.size(),
                  " downstream levels");
    for (const BoundaryOp &op : ops) {
        if (op.kind == BoundaryOp::Kind::Read)
            downstreamRead(level, op.addr, op.bytes, 0,
                           op.countRead, false);
        else
            queueDownstreamWrite(level, op.addr, op.bytes, 0,
                                 false);
    }
    return ops.size();
}

std::size_t
sharedFunctionalPrefix(const HierarchyParams &a,
                       const HierarchyParams &b)
{
    const std::size_t depth =
        std::min(a.levels.size(), b.levels.size());
    std::size_t k = 0;
    while (k < depth &&
           cache::functionallyEqual(a.levels[k], b.levels[k]))
        ++k;
    return k;
}

bool
warmCompatible(const HierarchyParams &a, const HierarchyParams &b)
{
    if (a.splitL1 != b.splitL1)
        return false;
    if (a.measureSolo || b.measureSolo)
        return false;
    if (a.splitL1 && !cache::functionallyEqual(a.l1i, b.l1i))
        return false;
    return cache::functionallyEqual(a.l1d, b.l1d);
}

SimResults
HierarchySimulator::results() const
{
    SimResults r;
    r.instructions = instructions_;
    r.cpuReads = ifetches_ + loads_;
    r.cpuWrites = stores_;
    r.references = ifetches_ + loads_ + stores_;

    r.totalCycles = divCeil(now_, cpuCycle_);
    const Tick ideal_ticks =
        instructions_ * cpuCycle_ +
        stores_ * (l1d_->params().writeCycles - 1) * l1dCycle_;
    r.idealCycles = divCeil(ideal_ticks, cpuCycle_);

    r.cpi = instructions_ == 0
                ? 0.0
                : static_cast<double>(r.totalCycles) /
                      static_cast<double>(instructions_);
    r.relativeExecTime =
        r.idealCycles == 0
            ? 0.0
            : static_cast<double>(r.totalCycles) /
                  static_cast<double>(r.idealCycles);

    const double cpu_reads = static_cast<double>(r.cpuReads);

    // Combined first level.
    LevelResults l1;
    l1.name = params_.splitL1 ? "l1" : "l1 (unified)";
    l1.readRequests = l1d_->counts().readAccesses() +
                      (l1i_ ? l1i_->counts().readAccesses() : 0);
    l1.readMisses = l1d_->counts().readMisses() +
                    (l1i_ ? l1i_->counts().readMisses() : 0);
    l1.writebacks = l1d_->counts().writebacks +
                    (l1i_ ? l1i_->counts().writebacks : 0);
    l1.localMissRatio =
        l1.readRequests == 0
            ? 0.0
            : static_cast<double>(l1.readMisses) /
                  static_cast<double>(l1.readRequests);
    l1.globalMissRatio =
        r.cpuReads == 0 ? 0.0
                        : static_cast<double>(l1.readMisses) /
                              cpu_reads;
    r.levels.push_back(l1);

    if (params_.splitL1) {
        for (const cache::Cache *c : {l1i_.get(), l1d_.get()}) {
            LevelResults d;
            d.name = c->params().name;
            d.readRequests = c->counts().readAccesses();
            d.readMisses = c->counts().readMisses();
            d.writebacks = c->counts().writebacks;
            d.localMissRatio = c->counts().readMissRatio();
            d.globalMissRatio =
                r.cpuReads == 0
                    ? 0.0
                    : static_cast<double>(d.readMisses) / cpu_reads;
            r.l1Detail.push_back(d);
        }
    }

    for (std::size_t i = 0; i < levels_.size(); ++i) {
        LevelResults lvl;
        lvl.name = levels_[i]->params().name;
        lvl.readRequests = readReqs_[i];
        lvl.readMisses = readMisses_[i];
        lvl.writebacks = levels_[i]->counts().writebacks;
        lvl.localMissRatio =
            readReqs_[i] == 0
                ? 0.0
                : static_cast<double>(readMisses_[i]) /
                      static_cast<double>(readReqs_[i]);
        lvl.globalMissRatio =
            r.cpuReads == 0
                ? 0.0
                : static_cast<double>(readMisses_[i]) / cpu_reads;
        if (params_.measureSolo)
            lvl.soloMissRatio = solo_[i]->counts().readMissRatio();
        r.levels.push_back(lvl);
    }

    if (l1ReadMissCount_ > 0) {
        r.meanL1MissPenaltyCycles =
            static_cast<double>(l1ReadMissStallTicks_) /
            static_cast<double>(cpuCycle_) /
            static_cast<double>(l1ReadMissCount_);
    }

    const double cycle = static_cast<double>(cpuCycle_);
    r.breakdown.base = static_cast<double>(baseTicks_) / cycle;
    r.breakdown.storeWriteHit =
        static_cast<double>(storeWriteHitTicks_) / cycle;
    r.breakdown.readStallCacheHit =
        static_cast<double>(readStallCacheTicks_) / cycle;
    r.breakdown.readStallMemory =
        static_cast<double>(readStallMemoryTicks_) / cycle;
    r.breakdown.storeStall =
        static_cast<double>(storeStallTicks_) / cycle;

    for (const auto &wb : wb_)
        r.writeBufferFullStalls += wb->fullStalls();

    return r;
}

} // namespace hier
} // namespace mlc
