#include "hier/sim_stats.hh"

namespace mlc {
namespace hier {

SimStats::SimStats(const HierarchySimulator &sim,
                   const std::string &name)
    : sim_(sim), root_(name)
{
    addCpuStats();
    addLevelStats();
    addWriteBufferStats();
}

void
SimStats::addCpuStats()
{
    auto *cpu = groups_
                    .emplace_back(std::make_unique<stats::Group>(
                        "cpu", &root_))
                    .get();
    auto add = [&](const char *stat_name, const char *desc,
                   auto fn) {
        formulas_.push_back(std::make_unique<stats::Formula>(
            cpu, stat_name, desc, std::move(fn)));
    };
    const HierarchySimulator &sim = sim_;
    add("instructions", "instructions executed",
        [&sim] { return double(sim.results().instructions); });
    add("reads", "loads + instruction fetches",
        [&sim] { return double(sim.results().cpuReads); });
    add("writes", "stores",
        [&sim] { return double(sim.results().cpuWrites); });
    add("cycles", "total CPU cycles",
        [&sim] { return double(sim.results().totalCycles); });
    add("cpi", "cycles per instruction",
        [&sim] { return sim.results().cpi; });
    add("relExecTime", "execution time vs all-hits ideal",
        [&sim] { return sim.results().relativeExecTime; });
    add("meanL1MissPenalty", "CPU cycles per L1 read miss",
        [&sim] { return sim.results().meanL1MissPenaltyCycles; });
    add("stallCyclesMemory", "read stall cycles reaching memory",
        [&sim] { return sim.results().breakdown.readStallMemory; });
    add("stallCyclesCache",
        "read stall cycles serviced by caches",
        [&sim] {
            return sim.results().breakdown.readStallCacheHit;
        });
    add("memoryReads", "main memory block reads",
        [&sim] { return double(sim.memoryReads()); });
    add("memoryWrites", "main memory block writes",
        [&sim] { return double(sim.memoryWrites()); });
}

void
SimStats::addLevelStats()
{
    // Combined L1 plus one group per downstream level; indexes into
    // SimResults::levels are fixed by construction.
    const std::size_t level_count = sim_.levelCount() + 1;
    for (std::size_t i = 0; i < level_count; ++i) {
        const std::string group_name =
            i == 0 ? "l1" : "l" + std::to_string(i + 1);
        auto *group = groups_
                          .emplace_back(
                              std::make_unique<stats::Group>(
                                  group_name, &root_))
                          .get();
        const HierarchySimulator &sim = sim_;
        auto add = [&](const char *stat_name, const char *desc,
                       auto fn) {
            formulas_.push_back(std::make_unique<stats::Formula>(
                group, stat_name, desc, std::move(fn)));
        };
        add("readRequests", "read requests reaching this level",
            [&sim, i] {
                return double(sim.results().levels[i].readRequests);
            });
        add("readMisses", "read misses at this level", [&sim, i] {
            return double(sim.results().levels[i].readMisses);
        });
        add("localMissRatio", "misses / incoming reads", [&sim, i] {
            return sim.results().levels[i].localMissRatio;
        });
        add("globalMissRatio", "misses / CPU reads", [&sim, i] {
            return sim.results().levels[i].globalMissRatio;
        });
        add("soloMissRatio",
            "miss ratio if this were the only cache (-1 when not "
            "measured)",
            [&sim, i] {
                return sim.results().levels[i].soloMissRatio;
            });
        add("writebacks", "dirty victims pushed downstream",
            [&sim, i] {
                return double(sim.results().levels[i].writebacks);
            });
    }
}

void
SimStats::addWriteBufferStats()
{
    for (std::size_t i = 0; i <= sim_.levelCount(); ++i) {
        const std::string group_name =
            "wbuf" + std::to_string(i + 1);
        auto *group = groups_
                          .emplace_back(
                              std::make_unique<stats::Group>(
                                  group_name, &root_))
                          .get();
        const HierarchySimulator &sim = sim_;
        auto add = [&](const char *stat_name, const char *desc,
                       auto fn) {
            formulas_.push_back(std::make_unique<stats::Formula>(
                group, stat_name, desc, std::move(fn)));
        };
        add("writesQueued", "block writes queued", [&sim, i] {
            return double(sim.writeBuffer(i).writesQueued());
        });
        add("writesCoalesced", "writes merged into pending entries",
            [&sim, i] {
                return double(sim.writeBuffer(i).writesCoalesced());
            });
        add("fullStalls", "requester stalls on a full buffer",
            [&sim, i] {
                return double(sim.writeBuffer(i).fullStalls());
            });
        add("readMatches",
            "demand reads that waited for a buffered write",
            [&sim, i] {
                return double(sim.writeBuffer(i).readMatches());
            });
    }
}

void
SimStats::dump(std::ostream &os) const
{
    root_.dumpAll(os);
    sim_.missPenaltyHistogram().dump(os, root_.name() + ".cpu");
}

} // namespace hier
} // namespace mlc
