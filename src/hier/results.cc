#include "hier/results.hh"

#include <iomanip>

namespace mlc {
namespace hier {

void
SimResults::print(std::ostream &os) const
{
    const auto flags = os.flags();
    os << "instructions          " << instructions << '\n'
       << "cpu reads             " << cpuReads << '\n'
       << "cpu writes            " << cpuWrites << '\n'
       << "total cycles          " << totalCycles << '\n'
       << "ideal cycles          " << idealCycles << '\n'
       << std::fixed << std::setprecision(4)
       << "CPI                   " << cpi << '\n'
       << "relative exec time    " << relativeExecTime << '\n'
       << "mean L1 miss penalty  " << meanL1MissPenaltyCycles
       << " cycles\n"
       << "wbuf full stalls      " << writeBufferFullStalls << '\n'
       << "cycle breakdown: base " << breakdown.base
       << ", store-hit " << breakdown.storeWriteHit
       << ", read-stall(cache) " << breakdown.readStallCacheHit
       << ", read-stall(memory) " << breakdown.readStallMemory
       << ", store-stall " << breakdown.storeStall << '\n';

    for (const auto &lvl : levels) {
        os << lvl.name << ": reads " << lvl.readRequests
           << ", misses " << lvl.readMisses << ", local "
           << std::setprecision(4) << lvl.localMissRatio
           << ", global " << lvl.globalMissRatio;
        if (lvl.hasSolo())
            os << ", solo " << lvl.soloMissRatio;
        os << ", writebacks " << lvl.writebacks << '\n';
    }
    for (const auto &lvl : l1Detail) {
        os << "  " << lvl.name << ": reads " << lvl.readRequests
           << ", misses " << lvl.readMisses << ", local "
           << lvl.localMissRatio << '\n';
    }
    os.flags(flags);
}

} // namespace hier
} // namespace mlc
