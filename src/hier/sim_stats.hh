/**
 * @file
 * Statistics binding: expose a HierarchySimulator's measurements as
 * a stats::Group tree, giving the classic simulator experience of a
 * flat "name value # description" dump (hierarchy_explorer's
 * output format).
 *
 * The binding is pull-based: every stat is a Formula reading the
 * simulator at dump time, so one SimStats can be dumped repeatedly
 * as a run progresses without re-wiring.
 */

#ifndef MLC_HIER_SIM_STATS_HH
#define MLC_HIER_SIM_STATS_HH

#include <memory>
#include <ostream>
#include <vector>

#include "hier/hierarchy.hh"
#include "stats/stats.hh"

namespace mlc {
namespace hier {

/** Stats-tree view over a simulator. */
class SimStats
{
  public:
    /**
     * @param sim borrowed; must outlive this object.
     * @param name root group name (default "sim").
     */
    explicit SimStats(const HierarchySimulator &sim,
                      const std::string &name = "sim");

    /** Dump every stat as "path value # description" lines. */
    void dump(std::ostream &os) const;

    stats::Group &root() { return root_; }

  private:
    void addCpuStats();
    void addLevelStats();
    void addWriteBufferStats();

    const HierarchySimulator &sim_;
    stats::Group root_;
    std::vector<std::unique_ptr<stats::Group>> groups_;
    std::vector<std::unique_ptr<stats::Formula>> formulas_;
};

} // namespace hier
} // namespace mlc

#endif // MLC_HIER_SIM_STATS_HH
