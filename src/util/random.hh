/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator never uses std::rand or random_device: every stream
 * of randomness is an explicitly seeded Rng so that traces,
 * experiments and tests are exactly reproducible across runs and
 * platforms. The core generator is xoshiro256** (Blackman/Vigna),
 * which is small, fast, and has no measurable bias in the moments
 * these models rely on.
 */

#ifndef MLC_UTIL_RANDOM_HH
#define MLC_UTIL_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

namespace mlc {

/** xoshiro256** with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric number of failures before a success with success
     * probability @p p in (0, 1]; mean (1-p)/p.
     */
    std::uint64_t nextGeometric(double p);

    /**
     * Fork an independent generator; children seeded from distinct
     * draws of this stream remain decorrelated.
     */
    Rng split();

    /**
     * @{ @name Generator state snapshot/restore
     * Warm-state checkpointing needs these: a restored
     * Random-policy tag array must draw exactly the victim
     * sequence it would have drawn had it warmed in place.
     */
    std::array<std::uint64_t, 4> state() const;
    void setState(const std::array<std::uint64_t, 4> &s);
    /** @} */

  private:
    std::uint64_t s_[4];
};

/**
 * Sampler for an arbitrary discrete distribution over {0..n-1},
 * built once from (unnormalized) weights; O(log n) per sample via
 * binary search of the cumulative table.
 */
class DiscreteSampler
{
  public:
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** Draw an index according to the weight distribution. */
    std::size_t sample(Rng &rng) const;

    /** Probability assigned to index @p i. */
    double probability(std::size_t i) const;

    std::size_t size() const { return cumulative_.size(); }

  private:
    std::vector<double> cumulative_;
    double total_;
};

} // namespace mlc

#endif // MLC_UTIL_RANDOM_HH
