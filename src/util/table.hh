/**
 * @file
 * Fixed-column ASCII table formatting for the benchmark harness and
 * examples. The figure-regeneration binaries print the paper's data
 * series as aligned tables; this keeps that presentation logic in
 * one place.
 */

#ifndef MLC_UTIL_TABLE_HH
#define MLC_UTIL_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mlc {

/** Column alignment inside a Table. */
enum class Align { Left, Right };

/**
 * A simple table builder: declare columns, append rows, print.
 * Column widths are computed from content.
 */
class Table
{
  public:
    /** Add a column; returns its index. */
    std::size_t addColumn(const std::string &header,
                          Align align = Align::Right);

    /** Start a new row. */
    Table &newRow();

    /** Append a cell to the current row. */
    Table &cell(const std::string &value);
    Table &cell(double value, int precision = 4);
    Table &cell(std::uint64_t value);
    Table &cell(int value);

    /** Render with a header rule; a blank table prints nothing. */
    void print(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    struct Column
    {
        std::string header;
        Align align;
    };

    std::vector<Column> columns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mlc

#endif // MLC_UTIL_TABLE_HH
