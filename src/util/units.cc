#include "util/units.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"
#include "util/str.hh"

namespace mlc {

bool
parseSize(std::string_view s, std::uint64_t &bytes)
{
    const std::string t = trim(s);
    if (t.empty())
        return false;

    std::size_t pos = 0;
    while (pos < t.size() &&
           (std::isdigit(static_cast<unsigned char>(t[pos])) ||
            t[pos] == '.'))
        ++pos;

    double value = 0.0;
    if (!parseDouble(t.substr(0, pos), value) || value < 0.0)
        return false;

    const std::string unit = toLower(trim(t.substr(pos)));
    std::uint64_t mult = 1;
    if (unit.empty() || unit == "b") {
        mult = 1;
    } else if (unit == "k" || unit == "kb" || unit == "kib") {
        mult = std::uint64_t{1} << 10;
    } else if (unit == "m" || unit == "mb" || unit == "mib") {
        mult = std::uint64_t{1} << 20;
    } else if (unit == "g" || unit == "gb" || unit == "gib") {
        mult = std::uint64_t{1} << 30;
    } else {
        return false;
    }

    const double scaled = value * static_cast<double>(mult);
    if (scaled > 9.0e18)
        return false;
    bytes = static_cast<std::uint64_t>(std::llround(scaled));
    return true;
}

std::uint64_t
parseSizeOrFatal(std::string_view s, std::string_view what)
{
    std::uint64_t bytes = 0;
    if (!parseSize(s, bytes))
        mlc_fatal("bad size for ", std::string(what), ": '",
                  std::string(s), "'");
    return bytes;
}

bool
parseDuration(std::string_view s, double &ns)
{
    const std::string t = trim(s);
    if (t.empty())
        return false;

    std::size_t pos = 0;
    while (pos < t.size() &&
           (std::isdigit(static_cast<unsigned char>(t[pos])) ||
            t[pos] == '.' || t[pos] == '-' || t[pos] == '+' ||
            t[pos] == 'e' || t[pos] == 'E'))
        ++pos;
    // Backtrack if an exponent consumed the unit (e.g. "10ns": 'n'
    // is not part of the number, but "1e3ns" works because strtod
    // validation below rejects partial parses).
    double value = 0.0;
    std::string unit;
    while (pos > 0) {
        if (parseDouble(t.substr(0, pos), value)) {
            unit = toLower(trim(t.substr(pos)));
            break;
        }
        --pos;
    }
    if (pos == 0)
        return false;

    double mult = 1.0;
    if (unit.empty() || unit == "ns") {
        mult = 1.0;
    } else if (unit == "ps") {
        mult = 1.0e-3;
    } else if (unit == "us") {
        mult = 1.0e3;
    } else if (unit == "ms") {
        mult = 1.0e6;
    } else if (unit == "s") {
        mult = 1.0e9;
    } else {
        return false;
    }
    if (value < 0.0)
        return false;
    ns = value * mult;
    return true;
}

double
parseDurationOrFatal(std::string_view s, std::string_view what)
{
    double ns = 0.0;
    if (!parseDuration(s, ns))
        mlc_fatal("bad duration for ", std::string(what), ": '",
                  std::string(s), "'");
    return ns;
}

std::string
formatSize(std::uint64_t bytes)
{
    char buf[32];
    const std::uint64_t kb = std::uint64_t{1} << 10;
    const std::uint64_t mb = std::uint64_t{1} << 20;
    const std::uint64_t gb = std::uint64_t{1} << 30;
    if (bytes >= gb && bytes % gb == 0)
        std::snprintf(buf, sizeof(buf), "%lluGB",
                      static_cast<unsigned long long>(bytes / gb));
    else if (bytes >= mb && bytes % mb == 0)
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(bytes / mb));
    else if (bytes >= kb && bytes % kb == 0)
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(bytes / kb));
    else
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

std::string
formatNs(double ns)
{
    char buf[48];
    if (ns >= 1.0e6)
        std::snprintf(buf, sizeof(buf), "%.3gms", ns / 1.0e6);
    else if (ns >= 1.0e3)
        std::snprintf(buf, sizeof(buf), "%.3gus", ns / 1.0e3);
    else
        std::snprintf(buf, sizeof(buf), "%.4gns", ns);
    return buf;
}

} // namespace mlc
