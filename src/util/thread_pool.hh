/**
 * @file
 * A small chunked thread pool for design-space sweeps.
 *
 * The sweep engine's unit of work is one independent grid cell or
 * trace simulation: coarse (milliseconds to minutes) and identical
 * in kind, so a single shared atomic counter handing out indices is
 * all the scheduling the workload needs — workers "steal" the next
 * index the moment they finish their current one, which keeps the
 * pool balanced even when cells differ wildly in cost (a 4MB L2
 * simulates slower than a 4KB one).
 *
 * Determinism contract: parallelFor(n, fn) promises only that fn is
 * called exactly once for every index in [0, n). Callers that need
 * reproducible results write into pre-sized slots indexed by the
 * task index and reduce in a fixed order afterwards — never in
 * completion order. Under that discipline jobs=1 and jobs=N produce
 * bit-identical output (see expt::parallelBuildGrid / runSuite).
 */

#ifndef MLC_UTIL_THREAD_POOL_HH
#define MLC_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlc {

/**
 * Fixed set of worker threads executing indexed batches. The
 * calling thread participates too, so ThreadPool(1) spawns no
 * threads at all and runs every batch inline, in index order.
 */
class ThreadPool
{
  public:
    /**
     * @param threads total workers including the calling thread;
     *        clamped to at least 1.
     */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers, including the calling thread. */
    std::size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Run fn(i) for every i in [0, n); blocks until all complete.
     * If any invocation throws, remaining unstarted indices are
     * abandoned and the exception thrown by the lowest index that
     * failed is rethrown here. The pool stays usable afterwards.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    /** Pull indices until the batch is drained or cancelled. */
    void runChunks();

    std::vector<std::thread> workers_;

    std::mutex m_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    std::size_t active_ = 0; //!< workers still inside the batch
    bool stop_ = false;

    //! @{ @name Current batch (valid while a parallelFor runs)
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t n_ = 0;
    std::atomic<std::size_t> next_{0};
    std::atomic<bool> failed_{false};
    std::exception_ptr error_;
    std::size_t errorIndex_ = 0;
    //! @}
};

/**
 * Worker count to use when the user expressed no preference: the
 * MLC_JOBS environment variable if it parses to a positive integer,
 * else std::thread::hardware_concurrency() (at least 1).
 */
std::size_t defaultJobs();

/**
 * Convenience one-shot: run fn(i) for i in [0, n) on @p jobs
 * workers. jobs <= 1 (or n <= 1) runs inline in index order
 * without touching any threading machinery.
 */
void parallelFor(std::size_t jobs, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace mlc

#endif // MLC_UTIL_THREAD_POOL_HH
