/**
 * @file
 * Minimal CSV emission for experiment results. Fields containing
 * commas, quotes or newlines are quoted per RFC 4180 so output can
 * be loaded into any plotting tool.
 */

#ifndef MLC_UTIL_CSV_HH
#define MLC_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace mlc {

/** Stream-backed CSV writer. */
class CsvWriter
{
  public:
    /** The writer does not own @p os ; it must outlive the writer. */
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Emit a header (or any) row of raw string cells. */
    void row(const std::vector<std::string> &cells);

    /** Begin building a row cell by cell. */
    CsvWriter &cell(const std::string &value);
    CsvWriter &cell(double value);
    CsvWriter &cell(std::uint64_t value);

    /** Finish the in-progress row. */
    void endRow();

  private:
    static std::string escape(const std::string &value);

    std::ostream &os_;
    bool rowStarted_ = false;
};

} // namespace mlc

#endif // MLC_UTIL_CSV_HH
