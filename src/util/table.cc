#include "util/table.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/logging.hh"

namespace mlc {

std::size_t
Table::addColumn(const std::string &header, Align align)
{
    if (!rows_.empty())
        mlc_panic("Table::addColumn after rows were added");
    columns_.push_back({header, align});
    return columns_.size() - 1;
}

Table &
Table::newRow()
{
    if (!rows_.empty() && rows_.back().size() != columns_.size())
        mlc_panic("Table row with ", rows_.back().size(),
                  " cells; expected ", columns_.size());
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    if (rows_.empty())
        mlc_panic("Table::cell before newRow");
    if (rows_.back().size() >= columns_.size())
        mlc_panic("Table row overflow: more cells than columns");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return cell(std::string(buf));
}

Table &
Table::cell(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    return cell(std::string(buf));
}

Table &
Table::cell(int value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d", value);
    return cell(std::string(buf));
}

void
Table::print(std::ostream &os) const
{
    if (columns_.empty())
        return;

    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].header.size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::string &text, std::size_t c) {
        const std::size_t pad = widths[c] - text.size();
        if (columns_[c].align == Align::Right)
            os << std::string(pad, ' ') << text;
        else
            os << text << std::string(pad, ' ');
    };

    for (std::size_t c = 0; c < columns_.size(); ++c) {
        if (c)
            os << "  ";
        emit(columns_[c].header, c);
    }
    os << '\n';
    std::size_t total = 0;
    for (std::size_t c = 0; c < columns_.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';

    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            emit(row[c], c);
        }
        os << '\n';
    }
}

} // namespace mlc
