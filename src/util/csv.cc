#include "util/csv.hh"

#include <cinttypes>
#include <cstdio>

namespace mlc {

std::string
CsvWriter::escape(const std::string &value)
{
    const bool needs_quotes =
        value.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return value;
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (const auto &c : cells)
        cell(c);
    endRow();
}

CsvWriter &
CsvWriter::cell(const std::string &value)
{
    if (rowStarted_)
        os_ << ',';
    os_ << escape(value);
    rowStarted_ = true;
    return *this;
}

CsvWriter &
CsvWriter::cell(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return cell(std::string(buf));
}

CsvWriter &
CsvWriter::cell(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    return cell(std::string(buf));
}

void
CsvWriter::endRow()
{
    os_ << '\n';
    rowStarted_ = false;
}

} // namespace mlc
