#include "util/thread_pool.hh"

#include <algorithm>
#include <cstdlib>

#include "util/str.hh"

namespace mlc {

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t extra = threads > 1 ? threads - 1 : 0;
    workers_.reserve(extra);
    for (std::size_t i = 0; i < extra; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        // Inline serial path: index order, exceptions propagate
        // directly.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lk(m_);
        fn_ = &fn;
        n_ = n;
        next_.store(0, std::memory_order_relaxed);
        failed_.store(false, std::memory_order_relaxed);
        error_ = nullptr;
        errorIndex_ = n;
        active_ = workers_.size();
        ++generation_;
    }
    wake_.notify_all();

    // The calling thread works the batch alongside the pool.
    runChunks();

    std::unique_lock<std::mutex> lk(m_);
    done_.wait(lk, [this] { return active_ == 0; });
    fn_ = nullptr;
    if (error_)
        std::rethrow_exception(error_);
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock<std::mutex> lk(m_);
        wake_.wait(lk, [this, seen] {
            return stop_ || generation_ != seen;
        });
        if (stop_)
            return;
        seen = generation_;
        lk.unlock();

        runChunks();

        lk.lock();
        if (--active_ == 0)
            done_.notify_all();
    }
}

void
ThreadPool::runChunks()
{
    for (;;) {
        if (failed_.load(std::memory_order_relaxed))
            return;
        const std::size_t i =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n_)
            return;
        try {
            (*fn_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(m_);
            // Keep the exception from the lowest failing index so
            // the caller sees a deterministic error when several
            // tasks fail in the same batch.
            if (!error_ || i < errorIndex_) {
                error_ = std::current_exception();
                errorIndex_ = i;
            }
            failed_.store(true, std::memory_order_relaxed);
        }
    }
}

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("MLC_JOBS");
        env && env[0] != '\0') {
        unsigned long long jobs = 0;
        if (parseUnsigned(env, jobs) && jobs >= 1)
            return static_cast<std::size_t>(jobs);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

void
parallelFor(std::size_t jobs, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(std::min(jobs, n));
    pool.parallelFor(n, fn);
}

} // namespace mlc
