/**
 * @file
 * Pooled byte arena for warm-state snapshots.
 *
 * Checkpoint-and-branch sweeps capture cache tag/valid/dirty state
 * once per sample window and restore it once per configuration.
 * Doing that with per-line (or even per-array) heap allocation would
 * put malloc on the sweep's critical path, so snapshots instead
 * bump-allocate out of one reusable arena: `reset()` rewinds the
 * write cursor without releasing capacity, and after the first
 * window the arena never allocates again. Blocks are addressed by
 * *offset*, not pointer, so snapshots stay valid across the vector
 * growth that may happen while the first window is being captured.
 */

#ifndef MLC_UTIL_SNAPSHOT_ARENA_HH
#define MLC_UTIL_SNAPSHOT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace mlc {

/** Bump allocator over one contiguous, reusable byte buffer. */
class SnapshotArena
{
  public:
    /** Rewind the cursor; existing capacity is kept for reuse. */
    void reset() { used_ = 0; }

    /**
     * Reserve @p bytes and return the block's offset. Blocks are
     * 8-byte aligned so snapshot readers can memcpy whole
     * std::uint64_t words without straddling.
     */
    std::size_t alloc(std::size_t bytes)
    {
        const std::size_t offset = (used_ + 7) & ~std::size_t{7};
        const std::size_t end = offset + bytes;
        if (end > bytes_.size()) {
            // Amortized doubling: one window's captures size the
            // arena for the rest of the sweep.
            std::size_t grown = bytes_.size() < 64 ? 64 : bytes_.size();
            while (grown < end)
                grown *= 2;
            bytes_.resize(grown);
        }
        used_ = end;
        return offset;
    }

    /** Writable view of a block previously handed out by alloc(). */
    std::uint8_t *at(std::size_t offset)
    {
        if (offset > used_)
            mlc_panic("SnapshotArena::at offset ", offset,
                      " past used size ", used_);
        return bytes_.data() + offset;
    }

    const std::uint8_t *at(std::size_t offset) const
    {
        if (offset > used_)
            mlc_panic("SnapshotArena::at offset ", offset,
                      " past used size ", used_);
        return bytes_.data() + offset;
    }

    std::size_t bytesUsed() const { return used_; }
    std::size_t capacity() const { return bytes_.size(); }

  private:
    std::vector<std::uint8_t> bytes_;
    std::size_t used_ = 0;
};

} // namespace mlc

#endif // MLC_UTIL_SNAPSHOT_ARENA_HH
