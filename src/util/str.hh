/**
 * @file
 * String helpers shared by the config parser, trace formats and
 * report formatting.
 */

#ifndef MLC_UTIL_STR_HH
#define MLC_UTIL_STR_HH

#include <string>
#include <string_view>
#include <vector>

namespace mlc {

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on runs of whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** ASCII lower-casing. */
std::string toLower(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/**
 * Parse a signed/unsigned integer or double with full-string
 * validation; returns false (leaving @p out untouched) on any
 * trailing garbage or range error.
 */
bool parseInt(std::string_view s, long long &out);
bool parseUnsigned(std::string_view s, unsigned long long &out);
bool parseDouble(std::string_view s, double &out);

} // namespace mlc

#endif // MLC_UTIL_STR_HH
