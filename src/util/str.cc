#include "util/str.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace mlc {

namespace {

bool
isSpace(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

} // namespace

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && isSpace(s[b]))
        ++b;
    while (e > b && isSpace(s[e - 1]))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && isSpace(s[i]))
            ++i;
        std::size_t start = i;
        while (i < s.size() && !isSpace(s[i]))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

bool
parseInt(std::string_view s, long long &out)
{
    const std::string buf(s);
    if (buf.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

bool
parseUnsigned(std::string_view s, unsigned long long &out)
{
    const std::string buf(s);
    if (buf.empty() || buf[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

bool
parseDouble(std::string_view s, double &out)
{
    const std::string buf(s);
    if (buf.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

} // namespace mlc
