#include "util/random.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mlc {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // splitmix64 expansion guarantees a non-degenerate state even
    // for seed == 0.
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        mlc_panic("Rng::nextBounded with zero bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        mlc_panic("Rng::nextRange with lo > hi: ", lo, " > ", hi);
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        mlc_panic("Rng::nextGeometric with p outside (0,1]: ", p);
    if (p == 1.0)
        return 0;
    double u = nextDouble();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

Rng
Rng::split()
{
    return Rng(next());
}

std::array<std::uint64_t, 4>
Rng::state() const
{
    return {s_[0], s_[1], s_[2], s_[3]};
}

void
Rng::setState(const std::array<std::uint64_t, 4> &s)
{
    // An all-zero state is the one fixed point of xoshiro256**; a
    // snapshot of a properly seeded generator can never contain it.
    if (s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0)
        mlc_panic("Rng::setState with degenerate all-zero state");
    for (std::size_t i = 0; i < 4; ++i)
        s_[i] = s[i];
}

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
    : total_(0.0)
{
    if (weights.empty())
        mlc_panic("DiscreteSampler with no weights");
    cumulative_.reserve(weights.size());
    for (double w : weights) {
        if (w < 0.0)
            mlc_panic("DiscreteSampler with negative weight ", w);
        total_ += w;
        cumulative_.push_back(total_);
    }
    if (total_ <= 0.0)
        mlc_panic("DiscreteSampler with zero total weight");
}

std::size_t
DiscreteSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble() * total_;
    auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    if (it == cumulative_.end())
        return cumulative_.size() - 1;
    return static_cast<std::size_t>(it - cumulative_.begin());
}

double
DiscreteSampler::probability(std::size_t i) const
{
    if (i >= cumulative_.size())
        mlc_panic("DiscreteSampler::probability index out of range");
    const double prev = i == 0 ? 0.0 : cumulative_[i - 1];
    return (cumulative_[i] - prev) / total_;
}

} // namespace mlc
