/**
 * @file
 * Small bit-manipulation helpers used throughout the cache models.
 * All sizes handled by the simulator are powers of two, so these
 * are exact (checked) operations rather than approximations.
 */

#ifndef MLC_UTIL_BITS_HH
#define MLC_UTIL_BITS_HH

#include <cstdint>

#include "util/logging.hh"

namespace mlc {

/** True iff @p v is a (positive) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** log2 of a value that must be an exact power of two. */
inline unsigned
exactLog2(std::uint64_t v)
{
    if (!isPowerOfTwo(v))
        mlc_panic("exactLog2 of non-power-of-two value ", v);
    return floorLog2(v);
}

/** A mask with the low @p bits bits set. */
constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << bits) - 1;
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p v up to a multiple of @p m (any non-zero m). */
constexpr std::uint64_t
roundUpMultiple(std::uint64_t v, std::uint64_t m)
{
    return divCeil(v, m) * m;
}

/**
 * Exact division by a divisor fixed at construction, computed with
 * a 128-bit multiply by a precomputed reciprocal instead of a
 * divide instruction (Granlund-Montgomery style). The quotient is
 * identical to `x / d` for every 64-bit x: with
 * magic = floor(2^(64+s) / d) and 2^s <= d, the estimate
 * floor(x * magic / 2^(64+s)) is at most one below the true
 * quotient, which the single correction step repairs.
 *
 * The simulator rounds a tick up to the next CPU-cycle boundary on
 * every L1 miss and every store; the CPU cycle is fixed for a
 * simulation but not a power of two (10 ns = 10000 ticks), which
 * is exactly this class's case.
 */
class FixedDivisor
{
  public:
    FixedDivisor() = default;

    explicit FixedDivisor(std::uint64_t d)
        : d_(d), shift_(floorLog2(d)), pow2_(isPowerOfTwo(d))
    {
        if (d == 0)
            mlc_panic("FixedDivisor by zero");
        if (!pow2_) {
            const unsigned __int128 num =
                static_cast<unsigned __int128>(1)
                << (64 + shift_);
            magic_ = static_cast<std::uint64_t>(num / d_);
        }
    }

    std::uint64_t divisor() const { return d_; }

    /** floor(x / d), exactly. */
    std::uint64_t
    div(std::uint64_t x) const
    {
        if (pow2_)
            return x >> shift_;
        std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * magic_ >> 64) >>
            shift_);
        if (x - q * d_ >= d_)
            ++q;
        return q;
    }

    /** ceil(x / d); x + d - 1 must not overflow. */
    std::uint64_t
    divCeil(std::uint64_t x) const
    {
        return div(x + d_ - 1);
    }

    /** x rounded up to a multiple of d; same overflow caveat. */
    std::uint64_t
    roundUp(std::uint64_t x) const
    {
        return divCeil(x) * d_;
    }

  private:
    std::uint64_t d_ = 1;
    std::uint64_t magic_ = 0;
    unsigned shift_ = 0;
    bool pow2_ = true;
};

} // namespace mlc

#endif // MLC_UTIL_BITS_HH
