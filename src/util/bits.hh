/**
 * @file
 * Small bit-manipulation helpers used throughout the cache models.
 * All sizes handled by the simulator are powers of two, so these
 * are exact (checked) operations rather than approximations.
 */

#ifndef MLC_UTIL_BITS_HH
#define MLC_UTIL_BITS_HH

#include <cstdint>

#include "util/logging.hh"

namespace mlc {

/** True iff @p v is a (positive) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** log2 of a value that must be an exact power of two. */
inline unsigned
exactLog2(std::uint64_t v)
{
    if (!isPowerOfTwo(v))
        mlc_panic("exactLog2 of non-power-of-two value ", v);
    return floorLog2(v);
}

/** A mask with the low @p bits bits set. */
constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << bits) - 1;
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p v up to a multiple of @p m (any non-zero m). */
constexpr std::uint64_t
roundUpMultiple(std::uint64_t v, std::uint64_t m)
{
    return divCeil(v, m) * m;
}

} // namespace mlc

#endif // MLC_UTIL_BITS_HH
