/**
 * @file
 * Parsing and formatting of sizes ("512KB") and durations ("10ns"),
 * used by the hierarchy config-file front end and by report output.
 *
 * Sizes use binary units: KB = 2^10, MB = 2^20, GB = 2^30 bytes,
 * which matches the paper's usage (a "512KB" L2 is 2^19 bytes).
 */

#ifndef MLC_UTIL_UNITS_HH
#define MLC_UTIL_UNITS_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace mlc {

/**
 * Parse a byte size such as "4096", "4KB", "4K", "512kB", "4MB".
 * @return true on success.
 */
bool parseSize(std::string_view s, std::uint64_t &bytes);

/** parseSize or fatal() with a message naming @p what. */
std::uint64_t parseSizeOrFatal(std::string_view s,
                               std::string_view what);

/**
 * Parse a duration such as "10ns", "1.5us", "120" (bare numbers are
 * nanoseconds) into nanoseconds.
 * @return true on success.
 */
bool parseDuration(std::string_view s, double &ns);

/** parseDuration or fatal() with a message naming @p what. */
double parseDurationOrFatal(std::string_view s, std::string_view what);

/** "4096" -> "4KB"; non-multiples fall back to plain bytes. */
std::string formatSize(std::uint64_t bytes);

/** Format nanoseconds compactly ("30ns", "1.5us"). */
std::string formatNs(double ns);

} // namespace mlc

#endif // MLC_UTIL_UNITS_HH
