/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, malformed trace file); exits with
 *            status 1.
 * warn()   — something is suspect but simulation continues.
 * inform() — plain status output for the user.
 *
 * All of them accept a list of streamable values which are
 * concatenated into the message.
 */

#ifndef MLC_UTIL_LOGGING_HH
#define MLC_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace mlc {

namespace detail {

/** Concatenate streamable values into one string. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: an internal simulator bug was detected. */
#define mlc_panic(...) \
    ::mlc::detail::panicImpl(__FILE__, __LINE__, \
                             ::mlc::detail::concat(__VA_ARGS__))

/** Exit with a message: the user asked for something impossible. */
#define mlc_fatal(...) \
    ::mlc::detail::fatalImpl(__FILE__, __LINE__, \
                             ::mlc::detail::concat(__VA_ARGS__))

/** Emit a warning to stderr and keep going. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::warnImpl(detail::concat(args...));
}

/** Emit a status message to stderr. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::informImpl(detail::concat(args...));
}

/**
 * Quiet mode suppresses warn()/inform() output (used by tests that
 * exercise warning paths).
 */
void setLogQuiet(bool quiet);
bool logQuiet();

} // namespace mlc

#endif // MLC_UTIL_LOGGING_HH
