/**
 * @file
 * A single functional cache: applies the write policy, fetch size
 * and optional prefetch to a TagArray and reports the resulting
 * downstream actions (fills, write-backs, forwarded writes). The
 * hierarchy simulator owns all timing; this layer decides *what*
 * happens, not *when*.
 */

#ifndef MLC_CACHE_CACHE_HH
#define MLC_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/tag_array.hh"
#include "trace/mem_ref.hh"

namespace mlc {
namespace cache {

/** A dirty victim to be written downstream. */
struct WritebackReq
{
    Addr base = 0;
    /** Bytes to write: the whole block, or with sub-blocking only
     *  the dirty sectors' worth. */
    std::uint32_t bytes = 0;

    bool
    operator==(const WritebackReq &o) const
    {
        return base == o.base && bytes == o.bytes;
    }
};

/** What an access did, for the timing layer to act on. */
struct AccessOutcome
{
    bool hit = false;
    /** Base addresses fetched from downstream (demand first, then
     *  the rest of the fetch group / prefetch); each request is
     *  params().fillRequestBytes() long. */
    std::vector<Addr> fills;
    /** Dirty victims that must be written downstream. */
    std::vector<WritebackReq> writebacks;
    /** The access itself must also be forwarded downstream
     *  (write-through, or a write miss without allocation). */
    bool forwardWrite = false;

    void
    clear()
    {
        hit = false;
        fills.clear();
        writebacks.clear();
        forwardWrite = false;
    }
};

/** Per-type access/miss counters, maintained by Cache. */
struct CacheCounts
{
    std::uint64_t ifetchAccesses = 0;
    std::uint64_t ifetchMisses = 0;
    std::uint64_t loadAccesses = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t storeAccesses = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t fills = 0;
    std::uint64_t prefetchFills = 0;
    /** Downstream-bound writes that hit here (absorbWrite). */
    std::uint64_t absorbedWrites = 0;
    /** ... and that missed and were passed around this level. */
    std::uint64_t bypassedWrites = 0;

    std::uint64_t
    readAccesses() const
    {
        return ifetchAccesses + loadAccesses;
    }
    std::uint64_t readMisses() const
    {
        return ifetchMisses + loadMisses;
    }
    double
    readMissRatio() const
    {
        return readAccesses() == 0
                   ? 0.0
                   : static_cast<double>(readMisses()) /
                         static_cast<double>(readAccesses());
    }
};

/**
 * Checkpoint of a Cache: its tag-array snapshot plus a plain copy
 * of the counters (CacheCounts is a small POD; no arena needed).
 */
struct CacheSnapshot
{
    TagArraySnapshot tags;
    CacheCounts counts;
};

/** One cache, functional behaviour only. */
class Cache
{
  public:
    /** @param params must already be finalized. */
    explicit Cache(const CacheParams &params, std::uint64_t seed = 1);

    /**
     * Apply one access.
     * @param outcome cleared and filled with downstream actions.
     */
    void access(const trace::MemRef &ref, AccessOutcome &outcome);

    /**
     * Hot path for the ~95% case: a read that hits.
     *
     * Performs exactly the state updates access() performs for a
     * read hit (access counter, recency touch) without going near
     * an AccessOutcome; returns false with NO state change on a
     * miss (or a boundary-crossing access) so the caller falls back
     * to access(), which re-probes and does the full bookkeeping.
     * Counter/tag evolution is therefore bit-identical to always
     * calling access(). Must only be called with ref.isRead().
     */
    bool
    tryReadHit(const trace::MemRef &ref)
    {
        const auto &geom = params_.geometry;
        if ((ref.addr & (geom.blockBytes - 1)) + ref.size >
            geom.blockBytes)
            return false; // access() panics with the full message
        if (!tags_.readTouch(ref.addr))
            return false;
        if (ref.type == trace::RefType::IFetch)
            ++counts_.ifetchAccesses;
        else
            ++counts_.loadAccesses;
        return true;
    }

    /**
     * Hot path for a store that hits a write-back cache: exactly
     * the state updates access() performs for that case (access
     * counter, recency touch, dirty bit) with no AccessOutcome.
     * Returns false with NO state change on a miss, a
     * boundary-crossing access, or a write-through cache (whose
     * store hits must forward the write downstream), so the caller
     * falls back to access(). Must only be called with a write ref.
     */
    bool
    tryStoreHit(const trace::MemRef &ref)
    {
        const auto &geom = params_.geometry;
        if ((ref.addr & (geom.blockBytes - 1)) + ref.size >
            geom.blockBytes)
            return false; // access() panics with the full message
        if (params_.writePolicy != WritePolicy::WriteBack)
            return false;
        if (!tags_.writeTouchDirty(ref.addr))
            return false;
        ++counts_.storeAccesses;
        return true;
    }

    /**
     * Apply a write travelling downstream (a victim write-back
     * from above, or a forwarded store): on hit the line is
     * touched and, for a write-back cache, marked dirty. Misses do
     * NOT allocate — the hierarchy passes the write around this
     * level (write-around).
     * @return true on hit.
     */
    bool absorbWrite(Addr addr);

    /**
     * Install the block containing @p addr dirty, as the Allocate
     * arm of DownstreamWriteMissPolicy after absorbWrite() missed.
     * @param outcome cleared; fills gets the block to fetch from
     *        downstream, writebacks any displaced dirty victim.
     */
    void absorbWriteAllocate(Addr addr, AccessOutcome &outcome);

    /** Probe without updating state (tests, inclusion checks). */
    bool contains(Addr addr) const
    {
        return tags_.probe(addr).hit;
    }

    const CacheParams &params() const { return params_; }
    const CacheCounts &counts() const { return counts_; }
    const TagArray &tags() const { return tags_; }

    /** Zero the counters; tag state is retained (post-warm-up). */
    void resetCounts() { counts_ = CacheCounts{}; }

    /** Checkpoint tag state + counters into @p arena. */
    void
    captureState(SnapshotArena &arena, CacheSnapshot &snap) const
    {
        tags_.captureState(arena, snap.tags);
        snap.counts = counts_;
    }

    /** Restore a checkpoint; panics on geometry mismatch. */
    void
    restoreState(const SnapshotArena &arena,
                 const CacheSnapshot &snap)
    {
        tags_.restoreState(arena, snap.tags);
        counts_ = snap.counts;
    }

  private:
    /** Fill every absent block of the aligned fetch group that
     *  contains @p addr; the demand block is filled first. */
    void fillGroup(Addr addr, bool demand_dirty,
                   AccessOutcome &outcome);

    void fillOne(Addr block_base, bool dirty, bool is_prefetch,
                 AccessOutcome &outcome);

    CacheParams params_;
    TagArray tags_;
    CacheCounts counts_;
};

} // namespace cache
} // namespace mlc

#endif // MLC_CACHE_CACHE_HH
