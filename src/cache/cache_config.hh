/**
 * @file
 * Cache organization parameters.
 *
 * Follows Smith's terminology as the paper does: a cache is
 * described by total size, set size (associativity), block size and
 * fetch size, plus its write strategy and timing. All byte
 * quantities are powers of two.
 */

#ifndef MLC_CACHE_CACHE_CONFIG_HH
#define MLC_CACHE_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "trace/mem_ref.hh"

namespace mlc {
namespace cache {

/** How writes that hit are propagated downstream. */
enum class WritePolicy : std::uint8_t {
    WriteBack,    //!< dirty data written on eviction (paper default)
    WriteThrough, //!< every write propagates immediately
};

/** How writes that miss are handled. */
enum class AllocPolicy : std::uint8_t {
    WriteAllocate,   //!< fetch the block, then write (paper default)
    NoWriteAllocate, //!< forward the write downstream, no fill
};

/**
 * How writes travelling *downstream* (victim write-backs from the
 * level above, forwarded stores) that miss in this cache are
 * handled. Around forwards them to the next level untouched;
 * Allocate fetches the enclosing block from below and installs it
 * dirty (more traffic now, possible reuse later).
 */
enum class DownstreamWriteMissPolicy : std::uint8_t {
    Around,
    Allocate,
};

/** Victim selection within a set. */
enum class ReplPolicy : std::uint8_t {
    LRU,
    FIFO,
    Random,
};

const char *writePolicyName(WritePolicy p);
const char *allocPolicyName(AllocPolicy p);
const char *replPolicyName(ReplPolicy p);
const char *downstreamWriteMissPolicyName(DownstreamWriteMissPolicy p);

/** Size/shape of a cache with derived indexing fields. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;  //!< total data capacity
    std::uint32_t blockBytes = 0; //!< line size
    /** Ways per set; 0 means fully associative. */
    std::uint32_t assoc = 1;

    /** Validate and compute the derived fields; fatal() on error. */
    void finalize(const std::string &name);

    /** @{ @name Derived (valid after finalize) */
    std::uint32_t ways = 0;
    std::uint64_t numSets = 0;
    unsigned blockShift = 0;
    std::uint64_t setMask = 0;
    /** blockShift + log2(numSets): tag extraction is a single
     *  shift, not a division — numSets is always a power of two. */
    unsigned tagShift = 0;
    /** @} */

    std::uint64_t numBlocks() const { return sizeBytes / blockBytes; }

    Addr blockAddr(Addr a) const { return a >> blockShift; }
    Addr blockBase(Addr a) const
    {
        return a & ~static_cast<Addr>(blockBytes - 1);
    }
    std::uint64_t setIndex(Addr a) const
    {
        return (a >> blockShift) & setMask;
    }
    Addr tagOf(Addr a) const { return a >> tagShift; }
};

/** Full per-cache configuration. */
struct CacheParams
{
    std::string name = "cache";
    CacheGeometry geometry;

    /**
     * Bytes brought in per demand miss. A multiple of the block
     * size fills adjacent blocks too; a power-of-two *divisor*
     * (>= 4) selects sub-block (sector) caching: one tag per
     * block, per-sub-block valid bits, fetches of fetchBytes.
     * 0 = same as block size.
     */
    std::uint32_t fetchBytes = 0;

    WritePolicy writePolicy = WritePolicy::WriteBack;
    AllocPolicy allocPolicy = AllocPolicy::WriteAllocate;
    ReplPolicy replPolicy = ReplPolicy::LRU;
    DownstreamWriteMissPolicy downstreamWriteMiss =
        DownstreamWriteMissPolicy::Around;

    /** Fetch the next block on a demand miss if absent. */
    bool prefetchNextBlock = false;

    /** Basic array cycle time in nanoseconds; a read hit completes
     *  in readCycles of these, a write hit in writeCycles (the
     *  paper's caches use 1 and 2). */
    double cycleNs = 10.0;
    std::uint32_t readCycles = 1;
    std::uint32_t writeCycles = 2;

    /** Sub-block (sector) mode: fetch size below the block size. */
    bool
    isSubBlocked() const
    {
        return fetchBytes != 0 && fetchBytes < geometry.blockBytes;
    }

    /** Bytes per downstream fill request. */
    std::uint32_t
    fillRequestBytes() const
    {
        return isSubBlocked() ? fetchBytes : geometry.blockBytes;
    }

    /** Validate everything; fatal() on error. */
    void finalize();
};

/**
 * True when two caches evolve identical functional state (tags,
 * valid/dirty bits, counters) when fed the same access stream.
 * Compares everything that shapes behaviour; deliberately ignores
 * cycleNs/readCycles/writeCycles (timing only) and the name. This
 * is the per-level test behind warm-state snapshot compatibility.
 */
inline bool
functionallyEqual(const CacheParams &a, const CacheParams &b)
{
    return a.geometry.sizeBytes == b.geometry.sizeBytes &&
           a.geometry.blockBytes == b.geometry.blockBytes &&
           a.geometry.assoc == b.geometry.assoc &&
           a.fetchBytes == b.fetchBytes &&
           a.writePolicy == b.writePolicy &&
           a.allocPolicy == b.allocPolicy &&
           a.replPolicy == b.replPolicy &&
           a.downstreamWriteMiss == b.downstreamWriteMiss &&
           a.prefetchNextBlock == b.prefetchNextBlock;
}

} // namespace cache
} // namespace mlc

#endif // MLC_CACHE_CACHE_CONFIG_HH
