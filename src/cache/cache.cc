#include "cache/cache.hh"

#include "util/logging.hh"

namespace mlc {
namespace cache {

Cache::Cache(const CacheParams &params, std::uint64_t seed)
    : params_(params),
      tags_(params.geometry, params.replPolicy, seed,
            params.isSubBlocked() ? params.fetchBytes : 0)
{
    if (params_.fetchBytes == 0)
        mlc_panic("Cache built from unfinalized params (call "
                  "CacheParams::finalize)");
}

void
Cache::fillOne(Addr base, bool dirty, bool is_prefetch,
               AccessOutcome &outcome)
{
    const Victim victim = params_.isSubBlocked()
                              ? tags_.fillSub(base, dirty)
                              : tags_.fill(base, dirty);
    ++counts_.fills;
    if (is_prefetch)
        ++counts_.prefetchFills;
    outcome.fills.push_back(base);
    if (victim.valid && victim.dirty) {
        ++counts_.writebacks;
        outcome.writebacks.push_back(
            {victim.blockBase, victim.dirtyBytes});
    }
}

void
Cache::fillGroup(Addr addr, bool demand_dirty, AccessOutcome &outcome)
{
    const auto &geom = params_.geometry;

    if (params_.isSubBlocked()) {
        // Sector cache: fetch only the missing sub-block (plus an
        // optional next-sub-block prefetch).
        const Addr demand_base =
            addr & ~static_cast<Addr>(params_.fetchBytes - 1);
        fillOne(demand_base, demand_dirty, false, outcome);
        if (params_.prefetchNextBlock) {
            const Addr next = demand_base + params_.fetchBytes;
            if (!tags_.probe(next).hit)
                fillOne(next, false, true, outcome);
        }
        return;
    }

    const Addr group_base =
        addr & ~static_cast<Addr>(params_.fetchBytes - 1);
    const Addr demand_base = geom.blockBase(addr);

    // Demand block first so the requester's data leads the fill.
    fillOne(demand_base, demand_dirty, false, outcome);
    for (Addr base = group_base;
         base < group_base + params_.fetchBytes;
         base += geom.blockBytes) {
        if (base == demand_base)
            continue;
        if (!tags_.probe(base).hit)
            fillOne(base, false, false, outcome);
    }

    if (params_.prefetchNextBlock) {
        const Addr next = group_base + params_.fetchBytes;
        if (!tags_.probe(next).hit)
            fillOne(next, false, true, outcome);
    }
}

bool
Cache::absorbWrite(Addr addr)
{
    const ProbeResult probe = tags_.probe(addr);
    if (probe.tagHit && !probe.hit) {
        // Sector cache, sub-block invalid: the incoming write
        // provides the data, making the sub-block valid in place.
        ++counts_.absorbedWrites;
        tags_.fillSub(addr,
                      params_.writePolicy == WritePolicy::WriteBack);
        return true;
    }
    if (!probe.hit) {
        ++counts_.bypassedWrites;
        return false;
    }
    ++counts_.absorbedWrites;
    tags_.touch(addr, probe.way);
    if (params_.writePolicy == WritePolicy::WriteBack)
        tags_.markDirty(addr, probe.way);
    return true;
}

void
Cache::absorbWriteAllocate(Addr addr, AccessOutcome &outcome)
{
    outcome.clear();
    if (tags_.probe(addr).hit)
        mlc_panic(params_.name,
                  ": absorbWriteAllocate on a resident block");
    const Addr base =
        params_.isSubBlocked()
            ? addr & ~static_cast<Addr>(params_.fetchBytes - 1)
            : params_.geometry.blockBase(addr);
    fillOne(base, true, false, outcome);
    ++counts_.absorbedWrites;
}

void
Cache::access(const trace::MemRef &ref, AccessOutcome &outcome)
{
    outcome.clear();
    const auto &geom = params_.geometry;

    if ((ref.addr & (geom.blockBytes - 1)) + ref.size >
        geom.blockBytes)
        mlc_panic(params_.name, ": access at 0x", ref.addr,
                  " crosses a block boundary");

    const ProbeResult probe = tags_.probe(ref.addr);

    if (ref.isRead()) {
        switch (ref.type) {
          case trace::RefType::IFetch:
            ++counts_.ifetchAccesses;
            break;
          default:
            ++counts_.loadAccesses;
            break;
        }
        if (probe.hit) {
            outcome.hit = true;
            tags_.touch(ref.addr, probe.way);
            return;
        }
        if (ref.type == trace::RefType::IFetch)
            ++counts_.ifetchMisses;
        else
            ++counts_.loadMisses;
        fillGroup(ref.addr, false, outcome);
        return;
    }

    // Write.
    ++counts_.storeAccesses;
    if (probe.hit) {
        outcome.hit = true;
        tags_.touch(ref.addr, probe.way);
        if (params_.writePolicy == WritePolicy::WriteBack)
            tags_.markDirty(ref.addr, probe.way);
        else
            outcome.forwardWrite = true;
        return;
    }

    ++counts_.storeMisses;
    if (params_.allocPolicy == AllocPolicy::WriteAllocate) {
        const bool dirty =
            params_.writePolicy == WritePolicy::WriteBack;
        fillGroup(ref.addr, dirty, outcome);
        if (params_.writePolicy == WritePolicy::WriteThrough)
            outcome.forwardWrite = true;
    } else {
        outcome.forwardWrite = true;
    }
}

} // namespace cache
} // namespace mlc
