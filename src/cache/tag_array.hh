/**
 * @file
 * Set-associative tag store with valid/dirty bits and pluggable
 * victim selection (LRU / FIFO / Random).
 *
 * The tag array is purely functional — it answers hit/miss, tracks
 * recency and dirtiness, and reports evicted victims; all timing
 * lives in the hierarchy simulator. Keeping it functional is what
 * makes the solo-miss-ratio co-simulation (Section 3's third miss
 * ratio) cheap: a solo cache is just a second TagArray fed the CPU
 * stream.
 */

#ifndef MLC_CACHE_TAG_ARRAY_HH
#define MLC_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "trace/mem_ref.hh"
#include "util/random.hh"

namespace mlc {
namespace cache {

/** Result of probing the array for a block. */
struct ProbeResult
{
    /** Tag matched AND the addressed sub-block is valid. For
     *  caches without sub-blocking this is the plain hit bit. */
    bool hit = false;
    /** Tag matched (the line is resident), regardless of
     *  sub-block validity. */
    bool tagHit = false;
    std::uint32_t way = 0;
};

/** An evicted line, reported from fill(). */
struct Victim
{
    bool valid = false; //!< a valid line was displaced
    bool dirty = false; //!< ... and it was dirty (needs write-back)
    Addr blockBase = 0; //!< byte address of the displaced block
    /** Bytes actually dirty (== block size without sub-blocking;
     *  the dirty sectors only, with it). */
    std::uint32_t dirtyBytes = 0;
};

/**
 * The tag store of one cache.
 *
 * Optional sub-blocking (sector caching): with a sub-block size
 * smaller than the block, each line carries per-sub-block valid and
 * dirty bits — one tag covers the whole block but data arrives and
 * leaves in sub-block units (the paper's "fetch size" below the
 * block size). A sub-block count of 1 degenerates to the classic
 * organization.
 */
class TagArray
{
  public:
    /**
     * @param sub_block_bytes sector size; 0 or geometry.blockBytes
     *        disables sub-blocking. Must divide the block size into
     *        at most 32 sub-blocks.
     */
    TagArray(const CacheGeometry &geometry, ReplPolicy policy,
             std::uint64_t seed = 1,
             std::uint32_t sub_block_bytes = 0);

    /** Look for the block containing @p addr ; no state change. */
    ProbeResult probe(Addr addr) const;

    /** Update replacement state after a hit. */
    void touch(Addr addr, std::uint32_t way);

    /** Mark a resident block dirty (after a write hit). */
    void markDirty(Addr addr, std::uint32_t way);

    bool isDirty(Addr addr, std::uint32_t way) const;

    /**
     * Install the block containing @p addr, evicting a victim if
     * the set is full.
     * @param dirty install already-dirty (write-allocate fill that
     *        is immediately written).
     * @return the displaced line, if any.
     */
    Victim fill(Addr addr, bool dirty);

    /**
     * Install only the sub-block containing @p addr: on a tag hit
     * the sub-block's valid bit is set in place (no victim); on a
     * tag miss a line is allocated with just that sub-block valid.
     * @param dirty install the sub-block already-dirty.
     */
    Victim fillSub(Addr addr, bool dirty);

    /** Sub-blocks per line (1 = no sub-blocking). */
    std::uint32_t subBlockCount() const { return subCount_; }

    /** Bytes of dirty sub-blocks in a resident line. */
    std::uint32_t dirtyBytes(Addr addr, std::uint32_t way) const;

    /**
     * Drop the block containing @p addr if present.
     * @return the line's state before invalidation.
     */
    Victim invalidate(Addr addr);

    /** Number of valid lines (for occupancy checks in tests). */
    std::uint64_t validCount() const;

    /** Byte addresses of all dirty resident blocks. */
    std::vector<Addr> dirtyBlocks() const;

    /** Invalidate everything (loses dirty data; tests only). */
    void clearAll();

    const CacheGeometry &geometry() const { return geom_; }
    ReplPolicy policy() const { return policy_; }

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint32_t validMask = 0; //!< per-sub-block valid bits
        std::uint32_t dirtyMask = 0; //!< per-sub-block dirty bits
        std::uint64_t useStamp = 0;    //!< updated on touch (LRU)
        std::uint64_t insertStamp = 0; //!< updated on fill (FIFO)

        bool anyValid() const { return validMask != 0; }
        bool anyDirty() const { return dirtyMask != 0; }
    };

    /** Bit index of the sub-block containing @p addr. */
    std::uint32_t subIndex(Addr addr) const;
    /** Mask with every sub-block bit set. */
    std::uint32_t fullMask() const;
    Victim makeVictim(const Line &line, std::uint64_t set) const;
    Victim evictAndInstall(Addr addr, std::uint32_t valid_mask,
                           std::uint32_t dirty_mask);

    Line &line(std::uint64_t set, std::uint32_t way)
    {
        return lines_[set * geom_.ways + way];
    }
    const Line &line(std::uint64_t set, std::uint32_t way) const
    {
        return lines_[set * geom_.ways + way];
    }

    std::uint32_t chooseVictim(std::uint64_t set);

    /** Reconstruct a block's byte address from set and tag. */
    Addr blockBaseOf(std::uint64_t set, Addr tag) const;

    CacheGeometry geom_;
    ReplPolicy policy_;
    std::uint32_t subBytes_;
    std::uint32_t subCount_;
    std::vector<Line> lines_;
    std::uint64_t stamp_ = 0;
    Rng rng_;
};

} // namespace cache
} // namespace mlc

#endif // MLC_CACHE_TAG_ARRAY_HH
