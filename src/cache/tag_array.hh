/**
 * @file
 * Set-associative tag store with valid/dirty bits and pluggable
 * victim selection (LRU / FIFO / Random).
 *
 * The tag array is purely functional — it answers hit/miss, tracks
 * recency and dirtiness, and reports evicted victims; all timing
 * lives in the hierarchy simulator. Keeping it functional is what
 * makes the solo-miss-ratio co-simulation (Section 3's third miss
 * ratio) cheap: a solo cache is just a second TagArray fed the CPU
 * stream.
 *
 * Storage is structure-of-arrays: the probe loop (the simulator's
 * innermost operation) walks only the tag and valid-mask arrays,
 * and index/tag extraction is pure shift-and-mask work — set
 * index, tag and sub-block shifts are all precomputed when the
 * array is built.
 */

#ifndef MLC_CACHE_TAG_ARRAY_HH
#define MLC_CACHE_TAG_ARRAY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "trace/mem_ref.hh"
#include "util/random.hh"
#include "util/snapshot_arena.hh"

namespace mlc {
namespace cache {

/** Result of probing the array for a block. */
struct ProbeResult
{
    /** Tag matched AND the addressed sub-block is valid. For
     *  caches without sub-blocking this is the plain hit bit. */
    bool hit = false;
    /** Tag matched (the line is resident), regardless of
     *  sub-block validity. */
    bool tagHit = false;
    std::uint32_t way = 0;
};

/** An evicted line, reported from fill(). */
struct Victim
{
    bool valid = false; //!< a valid line was displaced
    bool dirty = false; //!< ... and it was dirty (needs write-back)
    Addr blockBase = 0; //!< byte address of the displaced block
    /** Bytes actually dirty (== block size without sub-blocking;
     *  the dirty sectors only, with it). */
    std::uint32_t dirtyBytes = 0;
};

/**
 * Checkpoint of a TagArray, parked in a SnapshotArena.
 *
 * The five SoA line arrays live in the arena as raw memcpy'd blocks
 * addressed by offset (offsets survive arena growth; pointers would
 * not). The geometry fingerprint pins the snapshot to arrays of the
 * exact same shape — restoring into anything else is a hard panic,
 * not a silent reinterpretation of bytes.
 */
struct TagArraySnapshot
{
    /** @{ @name Geometry/policy fingerprint (restore-compat check) */
    std::uint64_t numSets = 0;
    std::uint32_t ways = 0;
    std::uint32_t blockBytes = 0;
    std::uint32_t subCount = 0;
    ReplPolicy policy = ReplPolicy::LRU;
    /** @} */

    std::size_t lines = 0;
    std::uint64_t stamp = 0;
    std::array<std::uint64_t, 4> rngState{};

    /** @{ @name Arena offsets of the copied SoA arrays */
    std::size_t tagsOff = 0;
    std::size_t validOff = 0;
    std::size_t dirtyOff = 0;
    std::size_t useOff = 0;
    std::size_t insertOff = 0;
    /** @} */
};

/**
 * The tag store of one cache.
 *
 * Optional sub-blocking (sector caching): with a sub-block size
 * smaller than the block, each line carries per-sub-block valid and
 * dirty bits — one tag covers the whole block but data arrives and
 * leaves in sub-block units (the paper's "fetch size" below the
 * block size). A sub-block count of 1 degenerates to the classic
 * organization.
 */
class TagArray
{
  public:
    /**
     * @param sub_block_bytes sector size; 0 or geometry.blockBytes
     *        disables sub-blocking. Must divide the block size into
     *        at most 32 sub-blocks.
     */
    TagArray(const CacheGeometry &geometry, ReplPolicy policy,
             std::uint64_t seed = 1,
             std::uint32_t sub_block_bytes = 0);

    /**
     * Look for the block containing @p addr ; no state change.
     *
     * Defined inline: this is the single hottest operation in the
     * whole simulator (every reference probes at least one tag
     * array), and the SoA storage below keeps the loop to two
     * narrow sequential arrays.
     */
    ProbeResult
    probe(Addr addr) const
    {
        const std::size_t base =
            lineIndex(geom_.setIndex(addr), 0);
        const Addr tag = geom_.tagOf(addr);
        ProbeResult r;
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            const std::size_t i = base + w;
            if (tags_[i] == tag) {
                r.tagHit = true;
                r.hit = (validMask_[i] >> subIndex(addr)) & 1;
                r.way = w;
                return r;
            }
        }
        return r;
    }

    /** Update replacement state after a hit. */
    void
    touch(Addr addr, std::uint32_t way)
    {
        useStamp_[lineIndex(geom_.setIndex(addr), way)] = ++stamp_;
    }

    /**
     * Fused probe + touch for the read-hit fast path: if the
     * addressed (sub-)block is resident and valid, update recency
     * and return true; otherwise return false with no state change.
     * Exactly probe() followed by touch() on a hit, with the index
     * arithmetic done once.
     */
    bool
    readTouch(Addr addr)
    {
        const std::size_t base =
            lineIndex(geom_.setIndex(addr), 0);
        const Addr tag = geom_.tagOf(addr);
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            const std::size_t i = base + w;
            if (tags_[i] == tag) {
                if (!((validMask_[i] >> subIndex(addr)) & 1))
                    return false;
                useStamp_[i] = ++stamp_;
                return true;
            }
        }
        return false;
    }

    /**
     * Fused probe + touch + markDirty for the write-back store-hit
     * fast path: same contract as readTouch(), additionally setting
     * the sub-block's dirty bit on a hit.
     */
    bool
    writeTouchDirty(Addr addr)
    {
        const std::size_t base =
            lineIndex(geom_.setIndex(addr), 0);
        const Addr tag = geom_.tagOf(addr);
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            const std::size_t i = base + w;
            if (tags_[i] == tag) {
                const std::uint32_t bit = std::uint32_t{1}
                                          << subIndex(addr);
                if (!(validMask_[i] & bit))
                    return false;
                dirtyMask_[i] |= bit;
                useStamp_[i] = ++stamp_;
                return true;
            }
        }
        return false;
    }

    /** Mark a resident block dirty (after a write hit). */
    void markDirty(Addr addr, std::uint32_t way);

    bool isDirty(Addr addr, std::uint32_t way) const;

    /**
     * Install the block containing @p addr, evicting a victim if
     * the set is full.
     * @param dirty install already-dirty (write-allocate fill that
     *        is immediately written).
     * @return the displaced line, if any.
     */
    Victim fill(Addr addr, bool dirty);

    /**
     * Install only the sub-block containing @p addr: on a tag hit
     * the sub-block's valid bit is set in place (no victim); on a
     * tag miss a line is allocated with just that sub-block valid.
     * @param dirty install the sub-block already-dirty.
     */
    Victim fillSub(Addr addr, bool dirty);

    /** Sub-blocks per line (1 = no sub-blocking). */
    std::uint32_t subBlockCount() const { return subCount_; }

    /** Bytes of dirty sub-blocks in a resident line. */
    std::uint32_t dirtyBytes(Addr addr, std::uint32_t way) const;

    /**
     * Drop the block containing @p addr if present.
     * @return the line's state before invalidation.
     */
    Victim invalidate(Addr addr);

    /** Number of valid lines (for occupancy checks in tests). */
    std::uint64_t validCount() const;

    /** Byte addresses of all dirty resident blocks. */
    std::vector<Addr> dirtyBlocks() const;

    /** Invalidate everything (loses dirty data; tests only). */
    void clearAll();

    /**
     * Copy the full line state (tags, valid/dirty masks, both
     * replacement stamps, stamp counter, RNG state) into @p arena
     * and describe it in @p snap. Five memcpys — no per-line work.
     */
    void captureState(SnapshotArena &arena,
                      TagArraySnapshot &snap) const;

    /**
     * Overwrite this array's state from a snapshot. Panics if the
     * snapshot's geometry fingerprint does not match this array.
     */
    void restoreState(const SnapshotArena &arena,
                      const TagArraySnapshot &snap);

    const CacheGeometry &geometry() const { return geom_; }
    ReplPolicy policy() const { return policy_; }

  private:
    /** Flat index of (set, way) into the SoA arrays. */
    std::size_t
    lineIndex(std::uint64_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set * geom_.ways + way);
    }

    /** Bit index of the sub-block containing @p addr — a shift,
     *  not a division (subShift_ precomputed at construction). */
    std::uint32_t
    subIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            (addr & (geom_.blockBytes - 1)) >> subShift_);
    }

    /** Mask with every sub-block bit set. */
    std::uint32_t fullMask() const;
    Victim makeVictim(std::size_t idx, std::uint64_t set) const;
    Victim evictAndInstall(Addr addr, std::uint32_t valid_mask,
                           std::uint32_t dirty_mask);

    std::uint32_t chooseVictim(std::uint64_t set);

    /** Reconstruct a block's byte address from set and tag. */
    Addr blockBaseOf(std::uint64_t set, Addr tag) const;

    CacheGeometry geom_;
    ReplPolicy policy_;
    std::uint32_t subBytes_;
    std::uint32_t subCount_;
    unsigned subShift_ = 0;

    /** Tag value stored for invalid lines. No real tag can be
     *  all-ones (tags are addr >> tagShift with tagShift >= 2), so
     *  the probe loop tests tags_ alone — validMask_ is only read
     *  to resolve sub-block validity after a tag match. The
     *  invariant validMask_[i] == 0 <=> tags_[i] == kInvalidTag is
     *  maintained by every install/invalidate path. */
    static constexpr Addr kInvalidTag = ~Addr{0};

    /**
     * Line state in structure-of-arrays form, indexed by
     * lineIndex(). The old array-of-struct layout pulled a 32-byte
     * Line (tag + masks + both stamps) into cache for every way
     * probed; splitting the arrays means the probe loop touches
     * only tags_ and validMask_, and the replacement stamps stay
     * out of the way until a hit or an eviction actually needs
     * them.
     */
    std::vector<Addr> tags_;
    std::vector<std::uint32_t> validMask_; //!< per-sub-block bits
    std::vector<std::uint32_t> dirtyMask_; //!< per-sub-block bits
    std::vector<std::uint64_t> useStamp_;    //!< touch (LRU)
    std::vector<std::uint64_t> insertStamp_; //!< fill (FIFO)

    std::uint64_t stamp_ = 0;
    Rng rng_;
};

} // namespace cache
} // namespace mlc

#endif // MLC_CACHE_TAG_ARRAY_HH
