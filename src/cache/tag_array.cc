#include "cache/tag_array.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mlc {
namespace cache {

TagArray::TagArray(const CacheGeometry &geometry, ReplPolicy policy,
                   std::uint64_t seed,
                   std::uint32_t sub_block_bytes)
    : geom_(geometry), policy_(policy),
      subBytes_(sub_block_bytes == 0 ? geometry.blockBytes
                                     : sub_block_bytes),
      rng_(seed)
{
    if (geom_.ways == 0 || geom_.numSets == 0)
        mlc_panic("TagArray built from an unfinalized geometry");
    if (!isPowerOfTwo(subBytes_) || subBytes_ > geom_.blockBytes ||
        geom_.blockBytes % subBytes_ != 0)
        mlc_panic("sub-block size ", subBytes_,
                  " must be a power-of-two divisor of block size ",
                  geom_.blockBytes);
    subCount_ = geom_.blockBytes / subBytes_;
    if (subCount_ > 32)
        mlc_panic("at most 32 sub-blocks per line, got ",
                  subCount_);
    subShift_ = exactLog2(subBytes_);

    if (geom_.tagShift == 0)
        mlc_panic("tag shift of zero would allow an all-ones tag");

    const std::size_t lines = geom_.numSets * geom_.ways;
    tags_.assign(lines, kInvalidTag);
    validMask_.assign(lines, 0);
    dirtyMask_.assign(lines, 0);
    useStamp_.assign(lines, 0);
    insertStamp_.assign(lines, 0);
}

std::uint32_t
TagArray::fullMask() const
{
    return subCount_ >= 32
               ? ~std::uint32_t{0}
               : (std::uint32_t{1} << subCount_) - 1;
}

void
TagArray::markDirty(Addr addr, std::uint32_t way)
{
    const std::size_t i = lineIndex(geom_.setIndex(addr), way);
    const std::uint32_t bit = std::uint32_t{1} << subIndex(addr);
    if (!(validMask_[i] & bit))
        mlc_panic("markDirty on an invalid (sub-)block");
    dirtyMask_[i] |= bit;
}

bool
TagArray::isDirty(Addr addr, std::uint32_t way) const
{
    return dirtyMask_[lineIndex(geom_.setIndex(addr), way)] != 0;
}

std::uint32_t
TagArray::dirtyBytes(Addr addr, std::uint32_t way) const
{
    const std::size_t i = lineIndex(geom_.setIndex(addr), way);
    return static_cast<std::uint32_t>(
               std::popcount(dirtyMask_[i])) *
           subBytes_;
}

std::uint32_t
TagArray::chooseVictim(std::uint64_t set)
{
    const std::size_t base = lineIndex(set, 0);

    // Invalid ways first, regardless of policy.
    for (std::uint32_t w = 0; w < geom_.ways; ++w)
        if (validMask_[base + w] == 0)
            return w;

    switch (policy_) {
      case ReplPolicy::LRU: {
        std::uint32_t victim = 0;
        std::uint64_t best = useStamp_[base];
        for (std::uint32_t w = 1; w < geom_.ways; ++w) {
            if (useStamp_[base + w] < best) {
                best = useStamp_[base + w];
                victim = w;
            }
        }
        return victim;
      }
      case ReplPolicy::FIFO: {
        std::uint32_t victim = 0;
        std::uint64_t best = insertStamp_[base];
        for (std::uint32_t w = 1; w < geom_.ways; ++w) {
            if (insertStamp_[base + w] < best) {
                best = insertStamp_[base + w];
                victim = w;
            }
        }
        return victim;
      }
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(
            rng_.nextBounded(geom_.ways));
    }
    mlc_panic("bad ReplPolicy ", static_cast<int>(policy_));
}

Addr
TagArray::blockBaseOf(std::uint64_t set, Addr tag) const
{
    return ((tag * geom_.numSets) + set) << geom_.blockShift;
}

Victim
TagArray::makeVictim(std::size_t idx, std::uint64_t set) const
{
    Victim victim;
    if (validMask_[idx] != 0) {
        victim.valid = true;
        victim.dirty = dirtyMask_[idx] != 0;
        victim.blockBase = blockBaseOf(set, tags_[idx]);
        victim.dirtyBytes =
            static_cast<std::uint32_t>(
                std::popcount(dirtyMask_[idx])) *
            subBytes_;
    }
    return victim;
}

Victim
TagArray::evictAndInstall(Addr addr, std::uint32_t valid_mask,
                          std::uint32_t dirty_mask)
{
    const std::uint64_t set = geom_.setIndex(addr);
    const std::uint32_t way = chooseVictim(set);
    const std::size_t i = lineIndex(set, way);
    const Victim victim = makeVictim(i, set);

    tags_[i] = geom_.tagOf(addr);
    validMask_[i] = valid_mask;
    dirtyMask_[i] = dirty_mask;
    useStamp_[i] = ++stamp_;
    insertStamp_[i] = stamp_;
    return victim;
}

Victim
TagArray::fill(Addr addr, bool dirty)
{
    const std::uint64_t set = geom_.setIndex(addr);
    const Addr tag = geom_.tagOf(addr);
    const std::size_t base = lineIndex(set, 0);

    // Filling a resident block is a bug in the caller: probe first.
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        const std::size_t i = base + w;
        if (tags_[i] == tag)
            mlc_panic("fill of already-resident block 0x",
                      geom_.blockBase(addr));
    }

    return evictAndInstall(addr, fullMask(),
                           dirty ? fullMask() : 0);
}

Victim
TagArray::fillSub(Addr addr, bool dirty)
{
    const std::uint64_t set = geom_.setIndex(addr);
    const Addr tag = geom_.tagOf(addr);
    const std::uint32_t bit = std::uint32_t{1} << subIndex(addr);
    const std::size_t base = lineIndex(set, 0);

    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        const std::size_t i = base + w;
        if (tags_[i] == tag) {
            if (validMask_[i] & bit)
                mlc_panic("fillSub of an already-valid sub-block "
                          "at 0x", addr);
            validMask_[i] |= bit;
            if (dirty)
                dirtyMask_[i] |= bit;
            useStamp_[i] = ++stamp_;
            return {};
        }
    }

    return evictAndInstall(addr, bit, dirty ? bit : 0);
}

Victim
TagArray::invalidate(Addr addr)
{
    const std::uint64_t set = geom_.setIndex(addr);
    const Addr tag = geom_.tagOf(addr);
    const std::size_t base = lineIndex(set, 0);
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        const std::size_t i = base + w;
        if (tags_[i] == tag) {
            const Victim victim = makeVictim(i, set);
            tags_[i] = kInvalidTag;
            validMask_[i] = 0;
            dirtyMask_[i] = 0;
            return victim;
        }
    }
    return {};
}

std::uint64_t
TagArray::validCount() const
{
    std::uint64_t n = 0;
    for (const std::uint32_t v : validMask_)
        if (v != 0)
            ++n;
    return n;
}

std::vector<Addr>
TagArray::dirtyBlocks() const
{
    std::vector<Addr> out;
    for (std::uint64_t set = 0; set < geom_.numSets; ++set) {
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            const std::size_t i = lineIndex(set, w);
            if (validMask_[i] != 0 && dirtyMask_[i] != 0)
                out.push_back(blockBaseOf(set, tags_[i]));
        }
    }
    return out;
}

void
TagArray::clearAll()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    std::fill(validMask_.begin(), validMask_.end(), 0);
    std::fill(dirtyMask_.begin(), dirtyMask_.end(), 0);
}

namespace {

template <typename T>
std::size_t
copyOut(SnapshotArena &arena, const std::vector<T> &v)
{
    const std::size_t off = arena.alloc(v.size() * sizeof(T));
    std::memcpy(arena.at(off), v.data(), v.size() * sizeof(T));
    return off;
}

template <typename T>
void
copyIn(const SnapshotArena &arena, std::size_t off,
       std::vector<T> &v)
{
    std::memcpy(v.data(), arena.at(off), v.size() * sizeof(T));
}

} // namespace

void
TagArray::captureState(SnapshotArena &arena,
                       TagArraySnapshot &snap) const
{
    snap.numSets = geom_.numSets;
    snap.ways = geom_.ways;
    snap.blockBytes = geom_.blockBytes;
    snap.subCount = subCount_;
    snap.policy = policy_;
    snap.lines = tags_.size();
    snap.stamp = stamp_;
    snap.rngState = rng_.state();
    snap.tagsOff = copyOut(arena, tags_);
    snap.validOff = copyOut(arena, validMask_);
    snap.dirtyOff = copyOut(arena, dirtyMask_);
    snap.useOff = copyOut(arena, useStamp_);
    snap.insertOff = copyOut(arena, insertStamp_);
}

void
TagArray::restoreState(const SnapshotArena &arena,
                       const TagArraySnapshot &snap)
{
    if (snap.numSets != geom_.numSets || snap.ways != geom_.ways ||
        snap.blockBytes != geom_.blockBytes ||
        snap.subCount != subCount_ || snap.policy != policy_ ||
        snap.lines != tags_.size())
        mlc_panic("TagArray::restoreState geometry mismatch: "
                  "snapshot is ", snap.numSets, "x", snap.ways,
                  " block=", snap.blockBytes, " sub=", snap.subCount,
                  ", array is ", geom_.numSets, "x", geom_.ways,
                  " block=", geom_.blockBytes, " sub=", subCount_);
    stamp_ = snap.stamp;
    rng_.setState(snap.rngState);
    copyIn(arena, snap.tagsOff, tags_);
    copyIn(arena, snap.validOff, validMask_);
    copyIn(arena, snap.dirtyOff, dirtyMask_);
    copyIn(arena, snap.useOff, useStamp_);
    copyIn(arena, snap.insertOff, insertStamp_);
}

} // namespace cache
} // namespace mlc
