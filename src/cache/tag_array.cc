#include "cache/tag_array.hh"

#include <bit>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mlc {
namespace cache {

TagArray::TagArray(const CacheGeometry &geometry, ReplPolicy policy,
                   std::uint64_t seed,
                   std::uint32_t sub_block_bytes)
    : geom_(geometry), policy_(policy),
      subBytes_(sub_block_bytes == 0 ? geometry.blockBytes
                                     : sub_block_bytes),
      rng_(seed)
{
    if (geom_.ways == 0 || geom_.numSets == 0)
        mlc_panic("TagArray built from an unfinalized geometry");
    if (!isPowerOfTwo(subBytes_) || subBytes_ > geom_.blockBytes ||
        geom_.blockBytes % subBytes_ != 0)
        mlc_panic("sub-block size ", subBytes_,
                  " must be a power-of-two divisor of block size ",
                  geom_.blockBytes);
    subCount_ = geom_.blockBytes / subBytes_;
    if (subCount_ > 32)
        mlc_panic("at most 32 sub-blocks per line, got ",
                  subCount_);
    lines_.resize(geom_.numSets * geom_.ways);
}

std::uint32_t
TagArray::subIndex(Addr addr) const
{
    return static_cast<std::uint32_t>(
        (addr & (geom_.blockBytes - 1)) / subBytes_);
}

std::uint32_t
TagArray::fullMask() const
{
    return subCount_ >= 32
               ? ~std::uint32_t{0}
               : (std::uint32_t{1} << subCount_) - 1;
}

ProbeResult
TagArray::probe(Addr addr) const
{
    const std::uint64_t set = geom_.setIndex(addr);
    const Addr tag = geom_.tagOf(addr);
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        const Line &l = line(set, w);
        if (l.anyValid() && l.tag == tag) {
            ProbeResult r;
            r.tagHit = true;
            r.hit = (l.validMask >> subIndex(addr)) & 1;
            r.way = w;
            return r;
        }
    }
    return {};
}

void
TagArray::touch(Addr addr, std::uint32_t way)
{
    Line &l = line(geom_.setIndex(addr), way);
    l.useStamp = ++stamp_;
}

void
TagArray::markDirty(Addr addr, std::uint32_t way)
{
    Line &l = line(geom_.setIndex(addr), way);
    const std::uint32_t bit = std::uint32_t{1} << subIndex(addr);
    if (!(l.validMask & bit))
        mlc_panic("markDirty on an invalid (sub-)block");
    l.dirtyMask |= bit;
}

bool
TagArray::isDirty(Addr addr, std::uint32_t way) const
{
    return line(geom_.setIndex(addr), way).anyDirty();
}

std::uint32_t
TagArray::dirtyBytes(Addr addr, std::uint32_t way) const
{
    const Line &l = line(geom_.setIndex(addr), way);
    return static_cast<std::uint32_t>(std::popcount(l.dirtyMask)) *
           subBytes_;
}

std::uint32_t
TagArray::chooseVictim(std::uint64_t set)
{
    // Invalid ways first, regardless of policy.
    for (std::uint32_t w = 0; w < geom_.ways; ++w)
        if (!line(set, w).anyValid())
            return w;

    switch (policy_) {
      case ReplPolicy::LRU: {
        std::uint32_t victim = 0;
        std::uint64_t best = line(set, 0).useStamp;
        for (std::uint32_t w = 1; w < geom_.ways; ++w) {
            if (line(set, w).useStamp < best) {
                best = line(set, w).useStamp;
                victim = w;
            }
        }
        return victim;
      }
      case ReplPolicy::FIFO: {
        std::uint32_t victim = 0;
        std::uint64_t best = line(set, 0).insertStamp;
        for (std::uint32_t w = 1; w < geom_.ways; ++w) {
            if (line(set, w).insertStamp < best) {
                best = line(set, w).insertStamp;
                victim = w;
            }
        }
        return victim;
      }
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(
            rng_.nextBounded(geom_.ways));
    }
    mlc_panic("bad ReplPolicy ", static_cast<int>(policy_));
}

Addr
TagArray::blockBaseOf(std::uint64_t set, Addr tag) const
{
    return ((tag * geom_.numSets) + set) << geom_.blockShift;
}

Victim
TagArray::makeVictim(const Line &l, std::uint64_t set) const
{
    Victim victim;
    if (l.anyValid()) {
        victim.valid = true;
        victim.dirty = l.anyDirty();
        victim.blockBase = blockBaseOf(set, l.tag);
        victim.dirtyBytes =
            static_cast<std::uint32_t>(std::popcount(l.dirtyMask)) *
            subBytes_;
    }
    return victim;
}

Victim
TagArray::evictAndInstall(Addr addr, std::uint32_t valid_mask,
                          std::uint32_t dirty_mask)
{
    const std::uint64_t set = geom_.setIndex(addr);
    const std::uint32_t way = chooseVictim(set);
    Line &l = line(set, way);
    const Victim victim = makeVictim(l, set);

    l.tag = geom_.tagOf(addr);
    l.validMask = valid_mask;
    l.dirtyMask = dirty_mask;
    l.useStamp = ++stamp_;
    l.insertStamp = stamp_;
    return victim;
}

Victim
TagArray::fill(Addr addr, bool dirty)
{
    const std::uint64_t set = geom_.setIndex(addr);
    const Addr tag = geom_.tagOf(addr);

    // Filling a resident block is a bug in the caller: probe first.
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        const Line &l = line(set, w);
        if (l.anyValid() && l.tag == tag)
            mlc_panic("fill of already-resident block 0x",
                      geom_.blockBase(addr));
    }

    return evictAndInstall(addr, fullMask(),
                           dirty ? fullMask() : 0);
}

Victim
TagArray::fillSub(Addr addr, bool dirty)
{
    const std::uint64_t set = geom_.setIndex(addr);
    const Addr tag = geom_.tagOf(addr);
    const std::uint32_t bit = std::uint32_t{1} << subIndex(addr);

    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        Line &l = line(set, w);
        if (l.anyValid() && l.tag == tag) {
            if (l.validMask & bit)
                mlc_panic("fillSub of an already-valid sub-block "
                          "at 0x", addr);
            l.validMask |= bit;
            if (dirty)
                l.dirtyMask |= bit;
            l.useStamp = ++stamp_;
            return {};
        }
    }

    return evictAndInstall(addr, bit, dirty ? bit : 0);
}

Victim
TagArray::invalidate(Addr addr)
{
    const std::uint64_t set = geom_.setIndex(addr);
    const Addr tag = geom_.tagOf(addr);
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        Line &l = line(set, w);
        if (l.anyValid() && l.tag == tag) {
            const Victim victim = makeVictim(l, set);
            l.validMask = 0;
            l.dirtyMask = 0;
            return victim;
        }
    }
    return {};
}

std::uint64_t
TagArray::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &l : lines_)
        if (l.anyValid())
            ++n;
    return n;
}

std::vector<Addr>
TagArray::dirtyBlocks() const
{
    std::vector<Addr> out;
    for (std::uint64_t set = 0; set < geom_.numSets; ++set) {
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            const Line &l = line(set, w);
            if (l.anyValid() && l.anyDirty())
                out.push_back(blockBaseOf(set, l.tag));
        }
    }
    return out;
}

void
TagArray::clearAll()
{
    for (auto &l : lines_) {
        l.validMask = 0;
        l.dirtyMask = 0;
    }
}

} // namespace cache
} // namespace mlc
