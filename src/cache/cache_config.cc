#include "cache/cache_config.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace mlc {
namespace cache {

const char *
writePolicyName(WritePolicy p)
{
    return p == WritePolicy::WriteBack ? "write-back"
                                       : "write-through";
}

const char *
allocPolicyName(AllocPolicy p)
{
    return p == AllocPolicy::WriteAllocate ? "write-allocate"
                                           : "no-write-allocate";
}

const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU:
        return "lru";
      case ReplPolicy::FIFO:
        return "fifo";
      case ReplPolicy::Random:
        return "random";
    }
    mlc_panic("bad ReplPolicy ", static_cast<int>(p));
}

const char *
downstreamWriteMissPolicyName(DownstreamWriteMissPolicy p)
{
    return p == DownstreamWriteMissPolicy::Around ? "around"
                                                  : "allocate";
}

void
CacheGeometry::finalize(const std::string &name)
{
    if (sizeBytes == 0 || !isPowerOfTwo(sizeBytes))
        mlc_fatal(name, ": cache size must be a power of two, got ",
                  sizeBytes);
    if (blockBytes == 0 || !isPowerOfTwo(blockBytes))
        mlc_fatal(name, ": block size must be a power of two, got ",
                  blockBytes);
    if (blockBytes > sizeBytes)
        mlc_fatal(name, ": block size ", blockBytes,
                  " exceeds cache size ", sizeBytes);

    const std::uint64_t blocks = sizeBytes / blockBytes;
    ways = assoc == 0 ? static_cast<std::uint32_t>(blocks) : assoc;
    if (ways > blocks)
        mlc_fatal(name, ": associativity ", ways,
                  " exceeds block count ", blocks);
    if (blocks % ways != 0 || !isPowerOfTwo(ways))
        mlc_fatal(name, ": associativity ", ways,
                  " must be a power of two dividing ", blocks);

    numSets = blocks / ways;
    blockShift = exactLog2(blockBytes);
    setMask = numSets - 1;
    tagShift = blockShift + exactLog2(numSets);
}

void
CacheParams::finalize()
{
    geometry.finalize(name);
    if (fetchBytes == 0)
        fetchBytes = geometry.blockBytes;
    if (!isPowerOfTwo(fetchBytes))
        mlc_fatal(name, ": fetch size ", fetchBytes,
                  " must be a power of two");
    if (fetchBytes >= geometry.blockBytes) {
        if (fetchBytes % geometry.blockBytes != 0)
            mlc_fatal(name, ": fetch size ", fetchBytes,
                      " must be a multiple of block size ",
                      geometry.blockBytes);
        if (fetchBytes > geometry.sizeBytes)
            mlc_fatal(name, ": fetch size ", fetchBytes,
                      " exceeds cache size");
    } else {
        // Sub-block (sector) mode.
        if (fetchBytes < 4 ||
            geometry.blockBytes % fetchBytes != 0)
            mlc_fatal(name, ": sub-block fetch size ", fetchBytes,
                      " must be a >=4-byte divisor of block size ",
                      geometry.blockBytes);
        if (geometry.blockBytes / fetchBytes > 32)
            mlc_fatal(name, ": at most 32 sub-blocks per line");
    }
    if (cycleNs <= 0.0)
        mlc_fatal(name, ": cycle time must be positive");
    if (readCycles == 0 || writeCycles == 0)
        mlc_fatal(name, ": access cycle counts must be non-zero");
    if (writePolicy == WritePolicy::WriteThrough &&
        allocPolicy == AllocPolicy::WriteAllocate)
        warn(name, ": write-through with write-allocate is legal "
                   "but unusual");
}

} // namespace cache
} // namespace mlc
