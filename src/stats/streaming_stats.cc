#include "stats/streaming_stats.hh"

#include <cmath>
#include <cstddef>

#include "util/logging.hh"

namespace mlc {
namespace stats {

namespace {

/**
 * Two-sided critical values t_{(1+c)/2, df} for df = 1..30, from
 * the standard tables (e.g. Abramowitz & Stegun Table 26.10);
 * these are the constants the golden tests pin.
 */
constexpr double kT90[30] = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
    1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,
    1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
    1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
constexpr double kT95[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
    2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
    2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
    2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
constexpr double kT99[30] = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
    3.250,  3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
    2.898,  2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
    2.787,  2.779, 2.771, 2.763, 2.756, 2.750};

/**
 * Cornish-Fisher expansion of the t quantile around the normal
 * quantile z (A&S 26.7.5), in powers of 1/df.
 */
double
tFromNormal(double z, double df)
{
    const double z2 = z * z;
    const double g1 = (z2 + 1.0) * z / 4.0;
    const double g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
    const double g3 =
        (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
    const double g4 =
        ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 -
         945.0) *
        z / 92160.0;
    const double inv = 1.0 / df;
    return z +
           inv * (g1 + inv * (g2 + inv * (g3 + inv * g4)));
}

} // namespace

double
normalQuantile(double p)
{
    if (!(p > 0.0 && p < 1.0))
        mlc_panic("normalQuantile: p must be in (0,1), got ", p);

    // Acklam's rational approximation with the standard
    // central/tail split at 0.02425.
    static const double a[6] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[5] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01};
    static const double c[6] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[4] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;

    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) *
                    q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q +
                1.0);
    }
    if (p > 1.0 - p_low)
        return -normalQuantile(1.0 - p);

    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
             a[4]) *
                r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
             b[4]) *
                r +
            1.0);
}

double
tCritical(std::uint64_t df, double confidence)
{
    if (!(confidence > 0.0 && confidence < 1.0))
        mlc_panic("tCritical: confidence must be in (0,1), got ",
                  confidence);
    if (df == 0)
        return std::numeric_limits<double>::infinity();

    if (df <= 30) {
        const std::size_t i = static_cast<std::size_t>(df - 1);
        if (confidence == 0.90)
            return kT90[i];
        if (confidence == 0.95)
            return kT95[i];
        if (confidence == 0.99)
            return kT99[i];
    }
    const double z = normalQuantile(0.5 * (1.0 + confidence));
    return tFromNormal(z, static_cast<double>(df));
}

double
ConfidenceInterval::relativeHalfWidth() const
{
    if (mean == 0.0)
        return std::numeric_limits<double>::infinity();
    return halfWidth / std::fabs(mean);
}

void
StreamingStats::merge(const StreamingStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double nab = na + nb;
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / nab;
    m2_ += other.m2_ + delta * delta * na * nb / nab;
    n_ += other.n_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

double
StreamingStats::sampleVariance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
StreamingStats::sampleStdDev() const
{
    return std::sqrt(sampleVariance());
}

double
StreamingStats::standardError() const
{
    if (n_ < 2)
        return 0.0;
    return sampleStdDev() / std::sqrt(static_cast<double>(n_));
}

ConfidenceInterval
StreamingStats::interval(double confidence) const
{
    ConfidenceInterval ci;
    ci.mean = mean_;
    ci.confidence = confidence;
    if (n_ < 2)
        return ci; // halfWidth stays +inf
    ci.halfWidth = tCritical(n_ - 1, confidence) * standardError();
    return ci;
}

void
PairedStats::push(double a, double b)
{
    ++n_;
    const double inv = 1.0 / static_cast<double>(n_);
    const double da = a - meanA_;
    meanA_ += da * inv;
    meanB_ += (b - meanB_) * inv;
    // Updating c2_ with the pre-update da and post-update meanB_
    // is the standard stable one-pass comoment (the covariance
    // analogue of Welford's M2 update).
    c2_ += da * (b - meanB_);
    a_.push(a);
    b_.push(b);
    delta_.push(b - a);
}

void
PairedStats::merge(const PairedStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double nab = na + nb;
    const double dA = other.meanA_ - meanA_;
    const double dB = other.meanB_ - meanB_;
    // Chan et al.'s pairwise comoment combination.
    c2_ += other.c2_ + dA * dB * na * nb / nab;
    meanA_ += dA * nb / nab;
    meanB_ += dB * nb / nab;
    n_ += other.n_;
    a_.merge(other.a_);
    b_.merge(other.b_);
    delta_.merge(other.delta_);
}

double
PairedStats::sampleCovariance() const
{
    if (n_ < 2)
        return 0.0;
    return c2_ / static_cast<double>(n_ - 1);
}

double
PairedStats::correlation() const
{
    const double sa = a_.sampleStdDev();
    const double sb = b_.sampleStdDev();
    if (n_ < 2 || sa == 0.0 || sb == 0.0)
        return 0.0;
    return sampleCovariance() / (sa * sb);
}

} // namespace stats
} // namespace mlc
