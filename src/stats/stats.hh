/**
 * @file
 * A small statistics package in the spirit of simulator stat
 * systems: named scalars, ratio formulas and histograms registered
 * into hierarchical groups, with a text dump.
 *
 * Simulation components own their stats as plain members and
 * register them with a Group; the Group handles naming,
 * description, reset and dumping so the components stay free of
 * presentation logic.
 */

#ifndef MLC_STATS_STATS_HH
#define MLC_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace mlc {
namespace stats {

class Group;

/** Base class for anything registrable with a Group. */
class Stat
{
  public:
    Stat(Group *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Full dotted path including all ancestor group names. */
    std::string fullName() const;

    /** Reset the value to its initial state. */
    virtual void reset() = 0;

    /** Append "name value # desc" lines to the dump. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix) const = 0;

  private:
    friend class Group;
    Group *parent_;
    std::string name_;
    std::string desc_;
};

/** A monotonically accumulated 64-bit counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }

    void reset() override { value_ = 0; }
    void dump(std::ostream &os,
              const std::string &prefix) const override;

  private:
    std::uint64_t value_ = 0;
};

/** A scalar double (e.g. a configured latency echoed into stats). */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator=(double v) { value_ = v; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    double value() const { return value_; }

    void reset() override { value_ = 0.0; }
    void dump(std::ostream &os,
              const std::string &prefix) const override;

  private:
    double value_ = 0.0;
};

/**
 * A derived value computed on demand from other stats (e.g. a miss
 * ratio = misses / accesses). Never needs resetting.
 */
class Formula : public Stat
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_(); }

    void reset() override {}
    void dump(std::ostream &os,
              const std::string &prefix) const override;

  private:
    std::function<double()> fn_;
};

/**
 * A histogram over a fixed linear or log2 bucketing, with overflow
 * and underflow buckets and mean/total tracking.
 */
class Histogram : public Stat
{
  public:
    /** Linear buckets: [lo, lo+w), [lo+w, lo+2w), ... count buckets. */
    static Histogram linear(Group *parent, std::string name,
                            std::string desc, double lo, double width,
                            std::size_t count);

    /** Log2 buckets: [1,2), [2,4), [4,8), ... count buckets. */
    static Histogram log2(Group *parent, std::string name,
                          std::string desc, std::size_t count);

    void sample(double v, std::uint64_t weight = 1);

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
    std::size_t bucketCount() const { return buckets_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    void reset() override;
    void dump(std::ostream &os,
              const std::string &prefix) const override;

  private:
    Histogram(Group *parent, std::string name, std::string desc,
              bool logarithmic, double lo, double width,
              std::size_t count);

    bool logarithmic_;
    double lo_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of stats and child groups. Groups do not own
 * their stats (stats are members of the owning component); they keep
 * non-owning registries used for dump/reset, so a Group must outlive
 * registration but stats must outlive the last dump.
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);
    ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }
    std::string fullName() const;

    /** Reset all stats in this group and children. */
    void resetAll();

    /** Dump all stats, depth first, as "path value # desc" lines. */
    void dumpAll(std::ostream &os) const;

  private:
    friend class Stat;

    void addStat(Stat *stat);
    void removeStat(Stat *stat);
    void addChild(Group *child);
    void removeChild(Group *child);

    std::string name_;
    Group *parent_;
    std::vector<Stat *> statList;
    std::vector<Group *> children;
};

} // namespace stats
} // namespace mlc

#endif // MLC_STATS_STATS_HH
