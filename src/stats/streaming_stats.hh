/**
 * @file
 * Single-pass (streaming) summary statistics with mergeable state
 * and t-distribution confidence intervals — the measurement layer
 * of the sampled-replay engine.
 *
 * StreamingStats accumulates count/mean/M2 with Welford's update,
 * which is numerically stable over millions of samples where the
 * naive sum-of-squares cancels catastrophically. Two accumulators
 * merge exactly (Chan et al.'s pairwise update), so per-shard
 * statistics combine into suite statistics without a second pass
 * and independently of merge order up to floating-point rounding.
 *
 * The confidence machinery is what SMARTS-style sampling needs: a
 * two-sided Student-t critical value for the across-window CPI
 * sample, a CLT half-width t * s / sqrt(n), and the derived
 * relative half-width that drives the adaptive stopping rule
 * ("keep sampling until the 95% interval is within X% of the
 * mean").
 */

#ifndef MLC_STATS_STREAMING_STATS_HH
#define MLC_STATS_STREAMING_STATS_HH

#include <cstdint>
#include <limits>

namespace mlc {
namespace stats {

/**
 * Two-sided Student-t critical value t_{(1+c)/2, df}.
 *
 * Exact (tabulated to 3-4 significant digits) for the three
 * standard confidence levels 0.90 / 0.95 / 0.99 at df <= 30; other
 * degrees of freedom and levels use the normal quantile plus the
 * Cornish-Fisher expansion in 1/df (Abramowitz & Stegun 26.7.5),
 * accurate to ~1e-3 for df >= 5. df == 0 returns +inf (no spread
 * information from a single sample).
 *
 * @param df degrees of freedom (sample count - 1).
 * @param confidence two-sided coverage in (0, 1), default 0.95.
 */
double tCritical(std::uint64_t df, double confidence = 0.95);

/** Standard normal quantile Phi^-1(p), p in (0, 1) (Acklam's
 *  rational approximation, |error| < 1.2e-9). */
double normalQuantile(double p);

/** A symmetric interval around a sample mean. */
struct ConfidenceInterval
{
    double mean = 0.0;
    double halfWidth = std::numeric_limits<double>::infinity();
    double confidence = 0.95;

    double lo() const { return mean - halfWidth; }
    double hi() const { return mean + halfWidth; }

    /** halfWidth / |mean| — the adaptive stopping rule's metric
     *  (inf when the mean is zero). */
    double relativeHalfWidth() const;

    bool
    contains(double x) const
    {
        return x >= lo() && x <= hi();
    }
};

/**
 * Welford mean/variance accumulator with exact merge.
 *
 * Deliberately a plain value type (copyable, no Group
 * registration): sampled-replay windows create one per
 * (configuration, trace) and merge across traces, which the
 * registry-based stats::Stat hierarchy is not shaped for.
 */
class StreamingStats
{
  public:
    StreamingStats() = default;

    /** Accumulate one observation. */
    void
    push(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    /** Fold another accumulator's samples into this one, exactly
     *  as if its observations had been push()ed here. */
    void merge(const StreamingStats &other);

    std::uint64_t count() const { return n_; }
    /** Sample mean (0 with no samples). */
    double mean() const { return mean_; }
    /** Unbiased sample variance (0 for n < 2). */
    double sampleVariance() const;
    /** sqrt(sampleVariance()). */
    double sampleStdDev() const;
    /** Standard error of the mean, s / sqrt(n) (0 for n < 2). */
    double standardError() const;
    /** Smallest/largest observation (+/-inf with no samples). */
    double min() const { return min_; }
    double max() const { return max_; }

    /**
     * CLT interval for the population mean: mean +/- t * s/sqrt(n).
     * With n < 2 the half-width is +inf — a single window bounds
     * nothing.
     */
    ConfidenceInterval interval(double confidence = 0.95) const;

    void reset() { *this = StreamingStats{}; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Accumulator for matched-pair (A, B) observations.
 *
 * Matched-pair sampling runs two machine configurations over the
 * SAME sample windows; per-window CPIs are then strongly
 * positively correlated (both see the same workload phase), so the
 * variance of the difference B - A,
 *
 *     Var(d) = Var(a) + Var(b) - 2 Cov(a, b),
 *
 * is far smaller than either absolute variance and the Student-t
 * interval on the mean difference is correspondingly tighter than
 * either absolute interval. This class tracks the two marginal
 * accumulators, the delta accumulator, and the streaming comoment
 * (pairwise-mergeable like Welford's M2), so both the tight delta
 * interval and the observed correlation can be reported.
 */
class PairedStats
{
  public:
    /** Accumulate one matched pair of observations. */
    void push(double a, double b);

    /** Fold another accumulator's pairs into this one. */
    void merge(const PairedStats &other);

    std::uint64_t count() const { return n_; }
    const StreamingStats &a() const { return a_; }
    const StreamingStats &b() const { return b_; }
    /** Accumulator over the per-pair differences b - a. */
    const StreamingStats &delta() const { return delta_; }

    /** Unbiased sample covariance of (a, b) (0 for n < 2). */
    double sampleCovariance() const;
    /** Pearson correlation of (a, b) (0 when degenerate). */
    double correlation() const;

    /** Paired-t interval on the mean difference b - a. */
    ConfidenceInterval
    deltaInterval(double confidence = 0.95) const
    {
        return delta_.interval(confidence);
    }

    void reset() { *this = PairedStats{}; }

  private:
    std::uint64_t n_ = 0;
    double meanA_ = 0.0;
    double meanB_ = 0.0;
    double c2_ = 0.0; //!< comoment sum((a-meanA)(b-meanB))
    StreamingStats a_;
    StreamingStats b_;
    StreamingStats delta_;
};

} // namespace stats
} // namespace mlc

#endif // MLC_STATS_STREAMING_STATS_HH
