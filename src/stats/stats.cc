#include "stats/stats.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace mlc {
namespace stats {

namespace {

std::string
valueLine(const std::string &prefix, const std::string &name,
          const std::string &value, const std::string &desc)
{
    std::string line = prefix.empty() ? name : prefix + "." + name;
    line += ' ';
    line += value;
    if (!desc.empty()) {
        line += "   # ";
        line += desc;
    }
    line += '\n';
    return line;
}

std::string
fmtDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
fmtU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

} // namespace

Stat::Stat(Group *parent, std::string name, std::string desc)
    : parent_(parent), name_(std::move(name)), desc_(std::move(desc))
{
    if (!parent_)
        mlc_panic("stat '", name_, "' created without a group");
    parent_->addStat(this);
}

std::string
Stat::fullName() const
{
    const std::string base = parent_->fullName();
    return base.empty() ? name_ : base + "." + name_;
}

void
Counter::dump(std::ostream &os, const std::string &prefix) const
{
    os << valueLine(prefix, name(), fmtU64(value_), desc());
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << valueLine(prefix, name(), fmtDouble(value_), desc());
}

Formula::Formula(Group *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : Stat(parent, std::move(name), std::move(desc)),
      fn_(std::move(fn))
{
    if (!fn_)
        mlc_panic("formula '", this->name(), "' with empty function");
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    os << valueLine(prefix, name(), fmtDouble(fn_()), desc());
}

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     bool logarithmic, double lo, double width,
                     std::size_t count)
    : Stat(parent, std::move(name), std::move(desc)),
      logarithmic_(logarithmic), lo_(lo), width_(width),
      buckets_(count, 0)
{
    if (count == 0)
        mlc_panic("histogram '", this->name(), "' with no buckets");
    if (!logarithmic_ && width_ <= 0.0)
        mlc_panic("histogram '", this->name(),
                  "' with non-positive bucket width");
}

Histogram
Histogram::linear(Group *parent, std::string name, std::string desc,
                  double lo, double width, std::size_t count)
{
    return Histogram(parent, std::move(name), std::move(desc),
                     false, lo, width, count);
}

Histogram
Histogram::log2(Group *parent, std::string name, std::string desc,
                std::size_t count)
{
    return Histogram(parent, std::move(name), std::move(desc),
                     true, 1.0, 0.0, count);
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    samples_ += weight;
    sum_ += v * static_cast<double>(weight);

    if (logarithmic_) {
        if (v < 1.0) {
            underflow_ += weight;
            return;
        }
        const auto idx =
            static_cast<std::size_t>(std::floor(std::log2(v)));
        if (idx >= buckets_.size())
            overflow_ += weight;
        else
            buckets_[idx] += weight;
        return;
    }

    if (v < lo_) {
        underflow_ += weight;
        return;
    }
    const auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= buckets_.size())
        overflow_ += weight;
    else
        buckets_[idx] += weight;
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0
                         : sum_ / static_cast<double>(samples_);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = 0.0;
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << valueLine(prefix, name() + ".samples", fmtU64(samples_),
                    desc());
    os << valueLine(prefix, name() + ".mean", fmtDouble(mean()), "");
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        double b_lo, b_hi;
        if (logarithmic_) {
            b_lo = std::exp2(static_cast<double>(i));
            b_hi = std::exp2(static_cast<double>(i + 1));
        } else {
            b_lo = lo_ + width_ * static_cast<double>(i);
            b_hi = b_lo + width_;
        }
        char label[64];
        std::snprintf(label, sizeof(label), "[%.6g,%.6g)", b_lo, b_hi);
        os << valueLine(prefix, name() + ".bucket" + label,
                        fmtU64(buckets_[i]), "");
    }
    if (underflow_)
        os << valueLine(prefix, name() + ".underflow",
                        fmtU64(underflow_), "");
    if (overflow_)
        os << valueLine(prefix, name() + ".overflow",
                        fmtU64(overflow_), "");
}

Group::Group(std::string name, Group *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->removeChild(this);
}

std::string
Group::fullName() const
{
    if (!parent_)
        return name_;
    const std::string base = parent_->fullName();
    return base.empty() ? name_ : base + "." + name_;
}

void
Group::addStat(Stat *stat)
{
    statList.push_back(stat);
}

void
Group::removeStat(Stat *stat)
{
    statList.erase(std::remove(statList.begin(), statList.end(), stat),
                   statList.end());
}

void
Group::addChild(Group *child)
{
    children.push_back(child);
}

void
Group::removeChild(Group *child)
{
    children.erase(std::remove(children.begin(), children.end(), child),
                   children.end());
}

void
Group::resetAll()
{
    for (auto *s : statList)
        s->reset();
    for (auto *g : children)
        g->resetAll();
}

void
Group::dumpAll(std::ostream &os) const
{
    const std::string prefix = fullName();
    for (const auto *s : statList)
        s->dump(os, prefix);
    for (const auto *g : children)
        g->dumpAll(os);
}

} // namespace stats
} // namespace mlc
