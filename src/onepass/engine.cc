#include "onepass/engine.hh"

#include <algorithm>
#include <utility>

#include "onepass/l1_filter.hh"
#include "onepass/sharded.hh"
#include "trace/stack_distance.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace onepass {

namespace {

/** Routes L1Filter events into a GhostTagForest. */
struct ForestSink
{
    GhostTagForest &forest;

    void
    onRead(Addr addr, bool counted)
    {
        forest.read(addr, counted);
    }
    void
    onWrite(Addr addr)
    {
        forest.write(addr);
    }
};

std::uint32_t
maxAssoc(const std::vector<GhostCacheSpec> &configs)
{
    std::uint32_t m = 1;
    for (const GhostCacheSpec &spec : configs)
        m = std::max(m, spec.assoc);
    return m;
}

} // namespace

std::vector<BlockGroup>
blockGroups(const std::vector<GhostCacheSpec> &configs)
{
    std::vector<BlockGroup> groups;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        BlockGroup *g = nullptr;
        for (BlockGroup &cand : groups)
            if (cand.blockBytes == configs[i].blockBytes)
                g = &cand;
        if (!g) {
            groups.push_back({configs[i].blockBytes, {}});
            g = &groups.back();
        }
        g->members.push_back(i);
    }
    return groups;
}

std::string
FamilySpec::key() const
{
    std::string k;
    for (const GhostCacheSpec &spec : configs) {
        if (!k.empty())
            k += "|";
        k += spec.toString();
    }
    return k;
}

FamilySpec
FamilySpec::l2Grid(const hier::HierarchyParams &base,
                   const std::vector<std::uint64_t> &sizes)
{
    if (base.levels.empty())
        mlc_panic("FamilySpec::l2Grid: base machine has no "
                  "downstream cache level to vary");
    const cache::CacheGeometry &g = base.levels[0].geometry;
    FamilySpec family;
    family.configs.reserve(sizes.size());
    for (std::uint64_t size : sizes)
        family.configs.push_back({size, g.assoc, g.blockBytes});
    return family;
}

FamilySpec
FamilySpec::crossProduct(const std::vector<std::uint64_t> &sizes,
                         const std::vector<std::uint32_t> &assocs,
                         const std::vector<std::uint32_t> &blocks)
{
    FamilySpec family;
    family.configs.reserve(sizes.size() * assocs.size() *
                           blocks.size());
    for (std::uint64_t size : sizes)
        for (std::uint32_t assoc : assocs)
            for (std::uint32_t block : blocks)
                family.configs.push_back({size, assoc, block});
    return family;
}

double
TraceProfile::l1GlobalMissRatio() const
{
    return cpuReads() == 0 ? 0.0
                           : static_cast<double>(l1ReadMisses) /
                                 static_cast<double>(cpuReads());
}

TraceProfile
profileTrace(const hier::HierarchyParams &base,
             const FamilySpec &family,
             const std::vector<trace::MemRef> &refs,
             std::uint64_t warmup_refs, const ProfileOptions &opts)
{
    return profileTrace(base, family,
                        trace::RefSpan{refs.data(), refs.size()},
                        warmup_refs, opts);
}

TraceProfile
profileTrace(const hier::HierarchyParams &base,
             const FamilySpec &family, trace::RefSpan refs,
             std::uint64_t warmup_refs, const ProfileOptions &opts)
{
    if (opts.shards > 1)
        return profileTraceSharded(base, family, refs, warmup_refs,
                                   opts);
    if (family.configs.empty())
        mlc_panic("profileTrace: empty cache family");

    L1Filter filter(base);
    const hier::HierarchyParams &params = filter.params();
    if (params.levels.empty())
        mlc_panic("profileTrace: the base machine has no downstream "
                  "level for the family to stand in for");

    const std::uint32_t l1_block = std::max(
        params.l1d.geometry.blockBytes,
        params.splitL1 ? params.l1i.geometry.blockBytes : 0u);
    for (const GhostCacheSpec &spec : family.configs)
        if (spec.blockBytes < l1_block)
            mlc_panic("profileTrace: family member ", spec.toString(),
                      " has a smaller block than the ", l1_block,
                      "B first-level block, which the hierarchy "
                      "disallows");

    const GhostPolicies policies = GhostPolicies::fromLevel(
        params.levels[0], maxAssoc(family.configs));
    GhostTagForest filtered(family.configs, policies);
    ForestSink sink{filtered};

    std::unique_ptr<GhostTagForest> solo;
    if (opts.solo)
        solo = std::make_unique<GhostTagForest>(family.configs,
                                                policies);

    // One fully-associative profiler per distinct block size.
    std::vector<BlockGroup> fa_groups;
    std::vector<trace::StackDistanceAnalyzer> fa;
    std::vector<std::size_t> fa_of_config(family.configs.size());
    if (opts.faBound) {
        fa_groups = blockGroups(family.configs);
        fa.reserve(fa_groups.size());
        for (std::size_t g = 0; g < fa_groups.size(); ++g) {
            fa.emplace_back(fa_groups[g].blockBytes);
            for (std::size_t m : fa_groups[g].members)
                fa_of_config[m] = g;
        }
    }

    for (std::size_t i = 0; i < refs.size; ++i) {
        if (i == warmup_refs) {
            filter.resetCounts();
            filtered.resetCounts();
            if (solo)
                solo->resetCounts();
            // The FA analyzers deliberately keep counting across
            // the boundary: a stack-distance profile has no tag
            // state to warm, and missRatio() is documented as a
            // whole-stream diagnostic.
        }
        const trace::MemRef &ref = refs[i];
        filter.step(ref, sink);
        if (solo)
            solo->soloAccess(ref);
        for (trace::StackDistanceAnalyzer &a : fa)
            a.access(ref.addr);
    }

    TraceProfile out;
    out.instructions = filter.instructions();
    out.ifetches = filter.ifetches();
    out.loads = filter.loads();
    out.stores = filter.stores();
    out.l1ReadRequests = filter.l1ReadRequests();
    out.l1ReadMisses = filter.l1ReadMisses();
    out.configs.resize(family.configs.size());
    for (std::size_t i = 0; i < family.configs.size(); ++i) {
        ConfigProfile &cp = out.configs[i];
        cp.spec = family.configs[i];
        cp.filtered = filtered.counts(i);
        if (solo)
            cp.solo = solo->counts(i);
        if (opts.faBound) {
            const trace::StackDistanceAnalyzer &a =
                fa[fa_of_config[i]];
            cp.faMissRatio = a.missRatio(cp.spec.sizeBytes /
                                         cp.spec.blockBytes);
            cp.faCompulsory = a.infiniteCount();
        }
    }
    return out;
}

std::vector<TraceProfile>
profileSuite(const hier::HierarchyParams &base,
             const FamilySpec &family, const expt::TraceStore &store,
             std::size_t jobs, const ProfileOptions &opts)
{
    if (family.configs.empty())
        mlc_panic("profileSuite: empty cache family");

    // Parallel grain: (trace x block-size group). Configs sharing a
    // block size already share one decode pass inside the forest, so
    // splitting them further would redo the L1 replay for nothing;
    // configs with different block sizes replay the L1 anyway (the
    // forest would decode per group), so giving each group its own
    // task buys parallelism at no extra total work.
    const std::vector<BlockGroup> groups =
        blockGroups(family.configs);
    std::vector<FamilySpec> sub_families(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g)
        for (std::size_t m : groups[g].members)
            sub_families[g].configs.push_back(family.configs[m]);

    const std::size_t n_traces = store.size();
    std::vector<TraceProfile> sub(n_traces * groups.size());
    parallelFor(jobs, sub.size(), [&](std::size_t task) {
        const std::size_t t = task / groups.size();
        const std::size_t g = task % groups.size();
        sub[task] = profileTrace(
            base, sub_families[g], store.traces()[t],
            expt::scaledWarmup(store.specs()[t]), opts);
    });

    // Fixed-order merge back into family order: bit-identical for
    // any jobs value.
    std::vector<TraceProfile> out(n_traces);
    for (std::size_t t = 0; t < n_traces; ++t) {
        TraceProfile &dst = out[t];
        const TraceProfile &first = sub[t * groups.size()];
        dst = first;
        dst.traceName = store.specs()[t].name;
        dst.configs.assign(family.configs.size(), ConfigProfile{});
        for (std::size_t g = 0; g < groups.size(); ++g) {
            const TraceProfile &part = sub[t * groups.size() + g];
            if (part.instructions != first.instructions ||
                part.stores != first.stores ||
                part.l1ReadMisses != first.l1ReadMisses)
                mlc_panic("profileSuite: block-size groups of trace "
                          "'", store.specs()[t].name,
                          "' disagree on the L1 replay — the filter "
                          "is not deterministic");
            for (std::size_t k = 0; k < groups[g].members.size();
                 ++k)
                dst.configs[groups[g].members[k]] = part.configs[k];
        }
    }
    return out;
}

} // namespace onepass
} // namespace mlc
