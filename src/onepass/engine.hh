/**
 * @file
 * One-pass multi-configuration profiling: read miss ratios for an
 * entire family of second-level caches from a single replay of the
 * reference stream.
 *
 * The timing sweep re-simulates the whole machine at every (L2
 * size x cycle time) grid cell, so grid cost grows with cell count.
 * The paper itself separates the concerns: miss ratios are a
 * property of the cache family (Section 3), and execution time
 * follows from them analytically (Equations 1-3). profileTrace()
 * computes the miss-ratio half of that split exactly: one pass
 * replays the L1s (L1Filter), fans the departing request stream
 * into a GhostTagForest with one member per candidate L2, and
 * reports per-config counts for all three of the paper's read
 * miss-ratio definitions — local, global (both from the filtered
 * stream) and solo (from a second forest fed the raw CPU stream).
 *
 * Exact versus approximate: the per-config read request and miss
 * counts equal a full hier::HierarchySimulator run bit for bit
 * (onepass::crossCheck verifies this), because functional cache
 * state is timing-independent and write-around levels never feed
 * back upstream. What one pass cannot reproduce is the timing
 * texture — write-buffer drain, bus contention, cycle rounding —
 * so execution time is *modelled* from the exact miss ratios
 * (EqTimingModel), not measured.
 */

#ifndef MLC_ONEPASS_ENGINE_HH
#define MLC_ONEPASS_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "expt/workload_suite.hh"
#include "hier/hierarchy_config.hh"
#include "onepass/ghost_tags.hh"

namespace mlc {
namespace onepass {

/** The family of candidate caches profiled in one pass. */
struct FamilySpec
{
    std::vector<GhostCacheSpec> configs;

    /**
     * The design-space grid family: every size in @p sizes at the
     * base machine's L2 associativity and block size (the cycle
     * axis changes timing only, so it needs no extra configs).
     */
    static FamilySpec l2Grid(const hier::HierarchyParams &base,
                             const std::vector<std::uint64_t> &sizes);

    /** Every (size x associativity x block size) combination. */
    static FamilySpec
    crossProduct(const std::vector<std::uint64_t> &sizes,
                 const std::vector<std::uint32_t> &assocs,
                 const std::vector<std::uint32_t> &blocks);

    /**
     * Canonical identity string ("512KB/1-way/32B|1MB/1-way/32B").
     * Two equal keys mean member-for-member equal families, so a
     * cached profile of one prices the other — what the query
     * server's resident profile cache (serve::ProfileCache) keys
     * on.
     */
    std::string key() const;
};

/** Distinct block sizes in first-appearance order, with the member
 *  indices using each — the parallel grain of profileSuite and the
 *  decode-sharing unit both the exact and the sampled (mrc)
 *  engines split families by. */
struct BlockGroup
{
    std::uint32_t blockBytes;
    std::vector<std::size_t> members;
};

std::vector<BlockGroup>
blockGroups(const std::vector<GhostCacheSpec> &configs);

/** What to compute beyond the filtered-stream counts. */
struct ProfileOptions
{
    /** Co-profile a solo forest on the raw CPU stream (Section 3's
     *  third miss-ratio definition). */
    bool solo = false;
    /**
     * Also run a trace::StackDistanceAnalyzer per distinct block
     * size over the raw stream for the fully-associative LRU bound
     * and compulsory-miss counts. Diagnostic: it spans the whole
     * stream (warm-up included), unlike the counters, which reset
     * at the warm-up boundary.
     */
    bool faBound = false;
    /**
     * Partition the ghost-forest sweep by set index across this
     * many ThreadPool workers (1 = the scalar in-line path).
     * Results are bit-identical for every value — sets are
     * independent, each is owned by exactly one shard, and the
     * per-shard counts merge in fixed order (DESIGN.md §5f).
     * Composes with profileSuite's jobs: shards parallelize
     * *within* one trace, jobs across traces.
     */
    std::size_t shards = 1;
};

/** Per-config results of one profiled trace. */
struct ConfigProfile
{
    GhostCacheSpec spec;
    /** Demand traffic at the level's position in the hierarchy:
     *  reads/readMisses are the paper's L2 read requests/misses. */
    GhostCounts filtered;
    /** Raw-CPU-stream counts (zero unless ProfileOptions::solo). */
    GhostCounts solo;
    /** Fully-associative LRU miss ratio at this capacity over the
     *  whole stream; negative unless ProfileOptions::faBound. */
    double faMissRatio = -1.0;
    /** Distinct blocks of this config's block size in the stream
     *  (compulsory misses); 0 unless ProfileOptions::faBound. */
    std::uint64_t faCompulsory = 0;
};

/**
 * One exactly-replayed intermediate level of a cascade profile
 * (cascade.hh): the pivot configuration and its demand traffic at
 * that level. A depth-3 profile carries one link (the L2 pivot);
 * the chain generalizes to deeper hierarchies.
 */
struct PivotLink
{
    GhostCacheSpec spec;
    /** Demand traffic arriving at the pivot: reads/readMisses are
     *  the level's counted read requests/misses, extra* the
     *  uncounted (store-origin / fetch-group) traffic. */
    GhostCounts counts;
    /** Raw-CPU-stream stand-alone counts for the pivot (zero unless
     *  ProfileOptions::solo). */
    GhostCounts solo;
};

/** Everything one pass learns about one trace. */
struct TraceProfile
{
    std::string traceName;

    /** @{ @name Measured reference mix (post-warm-up) */
    std::uint64_t instructions = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t cpuReads() const { return ifetches + loads; }
    /** @} */

    /** @{ @name Combined L1 read traffic (split I+D summed) */
    std::uint64_t l1ReadRequests = 0;
    std::uint64_t l1ReadMisses = 0;
    double l1GlobalMissRatio() const;
    /** @} */

    /** Parallel to the FamilySpec that produced this profile. */
    std::vector<ConfigProfile> configs;

    /**
     * Exactly-replayed intermediate levels between the L1s and the
     * profiled family, outermost first. Empty for the classic
     * two-level profile; a cascade profile (profileCascadeTrace)
     * carries one link per pivot level, and EqTimingModel composes
     * the chain's miss ratios into the deeper Eq. 1-3 model.
     */
    std::vector<PivotLink> pivotChain;
};

/**
 * Profile @p family at the position of base.levels[0]: replay the
 * first warmup_refs references without counting, then count over
 * the rest. Panics when the family cannot be modelled exactly
 * (see GhostPolicies::fromLevel) or when a member's block size is
 * smaller than the L1 fill size.
 */
TraceProfile profileTrace(const hier::HierarchyParams &base,
                          const FamilySpec &family,
                          trace::RefSpan refs,
                          std::uint64_t warmup_refs,
                          const ProfileOptions &opts = {});

/** Convenience overload for materialized vectors. */
TraceProfile profileTrace(const hier::HierarchyParams &base,
                          const FamilySpec &family,
                          const std::vector<trace::MemRef> &refs,
                          std::uint64_t warmup_refs,
                          const ProfileOptions &opts = {});

/**
 * Profile every trace of @p store, parallel across (trace x
 * block-size group) tasks. Each task writes into its own pre-sized
 * slot and results are merged in trace-then-family order, so the
 * output is bit-identical for any @p jobs.
 */
std::vector<TraceProfile>
profileSuite(const hier::HierarchyParams &base,
             const FamilySpec &family, const expt::TraceStore &store,
             std::size_t jobs = 1, const ProfileOptions &opts = {});

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_ENGINE_HH
