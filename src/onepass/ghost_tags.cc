#include "onepass/ghost_tags.hh"

#include <algorithm>
#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace mlc {
namespace onepass {

std::string
GhostCacheSpec::toString() const
{
    std::ostringstream os;
    os << formatSize(sizeBytes) << "/" << assoc << "-way/"
       << blockBytes << "B";
    return os.str();
}

double
GhostCounts::localMissRatio() const
{
    return reads == 0 ? 0.0
                      : static_cast<double>(readMisses) /
                            static_cast<double>(reads);
}

double
GhostCounts::globalMissRatio(std::uint64_t cpu_reads) const
{
    return cpu_reads == 0 ? 0.0
                          : static_cast<double>(readMisses) /
                                static_cast<double>(cpu_reads);
}

GhostTagArray::GhostTagArray(const GhostCacheSpec &spec)
{
    if (!isPowerOfTwo(spec.sizeBytes) ||
        !isPowerOfTwo(spec.blockBytes) || !isPowerOfTwo(spec.assoc))
        mlc_panic("ghost cache ", spec.toString(),
                  ": size, associativity and block size must all "
                  "be powers of two");
    const std::uint64_t way_bytes =
        static_cast<std::uint64_t>(spec.assoc) * spec.blockBytes;
    if (way_bytes > spec.sizeBytes)
        mlc_panic("ghost cache ", spec.toString(),
                  ": fewer than one set");
    const std::uint64_t sets = spec.sizeBytes / way_bytes;
    setMask_ = sets - 1;
    ways_ = spec.assoc;
    tags_.resize(sets * ways_, 0);
    stamps_.resize(sets * ways_, 0);
}

GhostTagArray::GhostTagArray(std::uint64_t sets, std::uint32_t ways)
    : ways_(ways)
{
    if (sets == 0 || ways == 0)
        mlc_panic("ghost slice: ", sets, " sets x ", ways,
                  " ways has no lines");
    tags_.resize(sets * ways_, 0);
    stamps_.resize(sets * ways_, 0);
}

bool
GhostTagArray::touchOrInstallAt(std::uint64_t set, std::uint64_t tag)
{
    std::uint64_t *tags = tags_.data() + set * ways_;
    std::uint64_t *stamps = stamps_.data() + set * ways_;
    const std::uint64_t hit = ghostHitScan(tags, stamps, ways_, tag);
    if (hit != 0) {
        stamps[hit - 1] = ++stamp_;
        return true;
    }
    // Strict < keeps the lowest-index minimum, and stamp 0
    // (invalid) always loses to any valid stamp — the same victim
    // TagArray::chooseVictim picks.
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways_; ++w)
        victim = stamps[w] < stamps[victim] ? w : victim;
    tags[victim] = tag;
    stamps[victim] = ++stamp_;
    return false;
}

bool
GhostTagArray::touchOnlyAt(std::uint64_t set, std::uint64_t tag)
{
    std::uint64_t *tags = tags_.data() + set * ways_;
    std::uint64_t *stamps = stamps_.data() + set * ways_;
    const std::uint64_t hit = ghostHitScan(tags, stamps, ways_, tag);
    if (hit == 0)
        return false;
    stamps[hit - 1] = ++stamp_;
    return true;
}

std::uint64_t
GhostTagArray::validCount() const
{
    std::uint64_t n = 0;
    for (const std::uint64_t s : stamps_)
        if (s != 0)
            ++n;
    return n;
}

std::vector<GhostLine>
GhostTagArray::validLines() const
{
    std::vector<GhostLine> lines;
    lines.reserve(validCount());
    for (std::size_t i = 0; i < stamps_.size(); ++i)
        if (stamps_[i] != 0)
            lines.push_back({i / ways_, tags_[i], stamps_[i]});
    std::sort(lines.begin(), lines.end(),
              [](const GhostLine &a, const GhostLine &b) {
                  return a.stamp < b.stamp;
              });
    return lines;
}

GhostPolicies
GhostPolicies::fromLevel(const cache::CacheParams &level,
                         std::uint32_t max_assoc)
{
    if (level.isSubBlocked())
        mlc_panic("one-pass engine: level '", level.name,
                  "' uses sub-blocking, which ghost tag arrays "
                  "cannot model exactly; use the timing engine");
    if (level.prefetchNextBlock)
        mlc_panic("one-pass engine: level '", level.name,
                  "' prefetches, which ghost tag arrays cannot "
                  "model exactly; use the timing engine");
    if (level.fetchBytes != 0 &&
        level.fetchBytes != level.geometry.blockBytes)
        mlc_panic("one-pass engine: level '", level.name,
                  "' fetch size ", level.fetchBytes,
                  " differs from its block size ",
                  level.geometry.blockBytes,
                  "; multi-block fetch groups are not modelled");
    if (max_assoc > 1 && level.replPolicy != cache::ReplPolicy::LRU)
        mlc_panic("one-pass engine: level '", level.name, "' uses ",
                  cache::replPolicyName(level.replPolicy),
                  " replacement; only LRU (or direct-mapped, where "
                  "the policy is moot) is exact in one pass");

    GhostPolicies p;
    p.alloc = level.allocPolicy;
    p.downstreamWriteMiss = level.downstreamWriteMiss;
    return p;
}

GhostTagForest::GhostTagForest(std::vector<GhostCacheSpec> specs,
                               GhostPolicies policies)
    : specs_(std::move(specs)), policies_(policies)
{
    if (specs_.empty())
        mlc_panic("GhostTagForest needs at least one config");
    arrays_.reserve(specs_.size());
    counts_.resize(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const GhostCacheSpec &spec = specs_[i];
        arrays_.emplace_back(spec);
        const unsigned shift = exactLog2(spec.blockBytes);
        Group *group = nullptr;
        for (Group &g : groups_)
            if (g.blockShift == shift)
                group = &g;
        if (!group) {
            groups_.push_back({shift, {}});
            group = &groups_.back();
        }
        group->members.push_back(i);
    }
}

void
GhostTagForest::read(Addr addr, bool counted)
{
    for (const Group &g : groups_) {
        const std::uint64_t block = addr >> g.blockShift;
        for (std::size_t m : g.members) {
            const bool hit = arrays_[m].touchOrInstall(block);
            GhostCounts &c = counts_[m];
            if (counted) {
                ++c.reads;
                if (!hit)
                    ++c.readMisses;
            } else {
                ++c.extraAccesses;
                if (!hit)
                    ++c.extraMisses;
            }
        }
    }
}

void
GhostTagForest::fill(Addr addr)
{
    read(addr, false);
}

void
GhostTagForest::write(Addr addr)
{
    const bool allocate =
        policies_.downstreamWriteMiss ==
        cache::DownstreamWriteMissPolicy::Allocate;
    for (const Group &g : groups_) {
        const std::uint64_t block = addr >> g.blockShift;
        for (std::size_t m : g.members) {
            if (allocate)
                arrays_[m].touchOrInstall(block);
            else
                arrays_[m].touchOnly(block);
        }
    }
}

void
GhostTagForest::soloAccess(const trace::MemRef &ref)
{
    const bool store_allocates =
        policies_.alloc == cache::AllocPolicy::WriteAllocate;
    for (const Group &g : groups_) {
        const std::uint64_t block = ref.addr >> g.blockShift;
        for (std::size_t m : g.members) {
            GhostCounts &c = counts_[m];
            if (ref.isRead()) {
                const bool hit = arrays_[m].touchOrInstall(block);
                ++c.reads;
                if (!hit)
                    ++c.readMisses;
            } else {
                // A store hit touches the line either way; a miss
                // allocates only under write-allocate (a
                // no-write-allocate miss forwards downstream and
                // leaves the tags alone) — cache::Cache::access.
                const bool hit =
                    store_allocates
                        ? arrays_[m].touchOrInstall(block)
                        : arrays_[m].touchOnly(block);
                ++c.extraAccesses;
                if (!hit)
                    ++c.extraMisses;
            }
        }
    }
}

void
GhostTagForest::resetCounts()
{
    for (GhostCounts &c : counts_)
        c = GhostCounts{};
}

const GhostCounts &
GhostTagForest::counts(std::size_t config) const
{
    if (config >= counts_.size())
        mlc_panic("GhostTagForest::counts index ", config,
                  " out of range (", counts_.size(), " configs)");
    return counts_[config];
}

} // namespace onepass
} // namespace mlc
