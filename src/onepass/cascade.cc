#include "onepass/cascade.hh"

#include <algorithm>

#include "onepass/l1_filter.hh"
#include "trace/stack_distance.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace onepass {

namespace {

/** hierarchy.cc seeds levels_[0] with kCacheSeedBase + 2; the
 *  pivot replica must match so a Random-replacement pivot picks
 *  the same victims as the timing simulator's L2. */
constexpr std::uint64_t kPivotSeed = 0x1234abcdULL + 2;

cache::CacheParams
pivotParams(const hier::HierarchyParams &base,
            const GhostCacheSpec &pivot)
{
    if (base.levels.empty())
        mlc_panic("cascade: the base machine has no downstream "
                  "level for the pivot to stand in for");
    cache::CacheParams p = base.levels[0];
    p.geometry.sizeBytes = pivot.sizeBytes;
    p.geometry.assoc = pivot.assoc;
    p.geometry.blockBytes = pivot.blockBytes;
    // Keep fetch == block when the pivot varies block size so
    // finalize() never sees a stale sub-block/fetch-group ratio.
    p.fetchBytes = pivot.blockBytes;
    p.finalize();
    return p;
}

std::uint32_t
maxAssoc(const std::vector<GhostCacheSpec> &specs)
{
    std::uint32_t m = 1;
    for (const GhostCacheSpec &spec : specs)
        m = std::max(m, spec.assoc);
    return m;
}

bool
sameCounts(const GhostCounts &a, const GhostCounts &b)
{
    return a.reads == b.reads && a.readMisses == b.readMisses &&
           a.extraAccesses == b.extraAccesses &&
           a.extraMisses == b.extraMisses;
}

} // namespace

std::string
CascadeFamilySpec::key() const
{
    std::string out;
    for (std::size_t i = 0; i < pivots.size(); ++i) {
        if (i)
            out += '|';
        out += pivots[i].toString();
    }
    out += "=>";
    out += l3.key();
    return out;
}

CascadeFilter::CascadeFilter(const hier::HierarchyParams &base,
                             const GhostCacheSpec &pivot)
    : cache_(pivotParams(base, pivot), kPivotSeed),
      writeThrough_(cache_.params().writePolicy ==
                    cache::WritePolicy::WriteThrough),
      writeAllocates_(cache_.params().downstreamWriteMiss ==
                      cache::DownstreamWriteMissPolicy::Allocate)
{
}

void
filterEventLog(const FilteredEventLog &in, CascadeFilter &filter,
               FilteredEventLog &out)
{
    out.events.clear();
    out.events.reserve(in.events.size() / 4);
    out.warmEvents = FilteredEventLog::kNoBoundary;
    for (std::size_t i = 0; i < in.events.size(); ++i) {
        if (i == in.warmEvents) {
            filter.resetCounts();
            out.warmEvents = out.events.size();
        }
        const std::uint64_t word = in.events[i];
        const Addr addr = word & ~FilteredEventLog::kKindMask;
        switch (word & FilteredEventLog::kKindMask) {
          case FilteredEventLog::ReadCounted:
            filter.onRead(addr, true, out);
            break;
          case FilteredEventLog::ReadUncounted:
            filter.onRead(addr, false, out);
            break;
          default:
            filter.onWrite(addr, out);
            break;
        }
    }
    // The boundary may lie past the last upstream event (short
    // streams): the warm point still zeroes everything downstream.
    if (in.warmEvents != FilteredEventLog::kNoBoundary &&
        in.warmEvents >= in.events.size()) {
        filter.resetCounts();
        out.warmEvents = out.events.size();
    }
}

std::vector<TraceProfile>
profileCascadeTrace(const hier::HierarchyParams &base,
                    const CascadeFamilySpec &family,
                    trace::RefSpan refs, std::uint64_t warmup_refs,
                    const ProfileOptions &opts)
{
    if (family.pivots.empty())
        mlc_panic("profileCascadeTrace: empty pivot family");
    if (family.l3.configs.empty())
        mlc_panic("profileCascadeTrace: empty downstream family");

    L1Filter filter(base);
    const hier::HierarchyParams &params = filter.params();
    if (params.levels.size() < 2)
        mlc_panic("profileCascadeTrace: the base machine needs at "
                  "least two downstream levels (a pivot position "
                  "and the profiled family's position); it has ",
                  params.levels.size());

    const std::uint32_t l1_block = std::max(
        params.l1d.geometry.blockBytes,
        params.splitL1 ? params.l1i.geometry.blockBytes : 0u);
    std::uint32_t max_pivot_block = 4;
    for (const GhostCacheSpec &pivot : family.pivots) {
        if (pivot.blockBytes < l1_block)
            mlc_panic("profileCascadeTrace: pivot ",
                      pivot.toString(),
                      " has a smaller block than the ", l1_block,
                      "B first-level block, which the hierarchy "
                      "disallows");
        if (pivot.blockBytes < 4)
            mlc_panic("profileCascadeTrace: pivot ",
                      pivot.toString(),
                      " has a block under 4 bytes; the event log "
                      "packs the event kind into the low two "
                      "address bits");
        max_pivot_block = std::max(max_pivot_block,
                                   pivot.blockBytes);
    }
    for (const GhostCacheSpec &spec : family.l3.configs)
        if (spec.blockBytes < max_pivot_block)
            mlc_panic("profileCascadeTrace: downstream member ",
                      spec.toString(),
                      " has a smaller block than the widest ",
                      max_pivot_block, "B pivot block, which the "
                      "hierarchy disallows");

    const GhostPolicies pivot_pol = GhostPolicies::fromLevel(
        params.levels[0], maxAssoc(family.pivots));
    const GhostPolicies l3_pol = GhostPolicies::fromLevel(
        params.levels[1], maxAssoc(family.l3.configs));

    // FA-bound analyzers span the whole stream (see profileTrace).
    struct FaState
    {
        std::uint32_t blockBytes;
        trace::StackDistanceAnalyzer analyzer;
    };
    const std::size_t n3 = family.l3.configs.size();
    std::vector<FaState> fa;
    std::vector<std::size_t> fa_of_config(n3, 0);
    if (opts.faBound) {
        for (std::size_t m = 0; m < n3; ++m) {
            const std::uint32_t bb =
                family.l3.configs[m].blockBytes;
            std::size_t g = fa.size();
            for (std::size_t k = 0; k < fa.size(); ++k)
                if (fa[k].blockBytes == bb)
                    g = k;
            if (g == fa.size())
                fa.push_back({bb, trace::StackDistanceAnalyzer(bb)});
            fa_of_config[m] = g;
        }
    }

    // --- Phase 1: one serial L1 replay into the shared log.
    FilteredEventLog l1log;
    l1log.warmEvents = FilteredEventLog::kNoBoundary;
    l1log.events.reserve(refs.size / 8);
    for (std::size_t i = 0; i < refs.size; ++i) {
        if (i == warmup_refs) {
            filter.resetCounts();
            l1log.warmEvents = l1log.events.size();
        }
        filter.step(refs[i], l1log);
        if (opts.faBound)
            for (FaState &f : fa)
                f.analyzer.access(refs[i].addr);
    }

    // Pivot-independent halves, computed once and shared: the solo
    // sweeps (raw stream) and the L2 ghost forest over the L1 log,
    // which doubles as the exactness invariant for every pivot.
    std::vector<GhostCounts> pivot_solo, member_solo;
    if (opts.solo) {
        pivot_solo = sweepSoloStream(refs, warmup_refs,
                                     family.pivots, pivot_pol,
                                     opts.shards);
        member_solo = sweepSoloStream(refs, warmup_refs,
                                      family.l3.configs, l3_pol,
                                      opts.shards);
    }
    const std::vector<GhostCounts> pivot_forest =
        sweepEventLog(l1log, family.pivots, pivot_pol, opts.shards);

    // --- Phase 2: per pivot, one exact filtered replay and one
    // sharded ghost sweep of the much smaller L2-filtered log.
    std::vector<TraceProfile> out(family.pivots.size());
    FilteredEventLog l2log;
    for (std::size_t p = 0; p < family.pivots.size(); ++p) {
        CascadeFilter cascade(params, family.pivots[p]);
        filterEventLog(l1log, cascade, l2log);

        // The pivot is both exactly replayed (CascadeFilter) and
        // ghost-modelled (the L2 forest): the two are provably the
        // same sequence, so their counts must agree bit for bit.
        if (!sameCounts(cascade.counts(), pivot_forest[p]))
            mlc_panic("profileCascadeTrace: pivot ",
                      family.pivots[p].toString(),
                      " exact replay disagrees with the L2 ghost "
                      "forest (", cascade.counts().readMisses, "/",
                      cascade.counts().reads, " vs ",
                      pivot_forest[p].readMisses, "/",
                      pivot_forest[p].reads,
                      " read misses/requests)");

        const std::vector<GhostCounts> filtered = sweepEventLog(
            l2log, family.l3.configs, l3_pol, opts.shards);

        TraceProfile &tp = out[p];
        tp.instructions = filter.instructions();
        tp.ifetches = filter.ifetches();
        tp.loads = filter.loads();
        tp.stores = filter.stores();
        tp.l1ReadRequests = filter.l1ReadRequests();
        tp.l1ReadMisses = filter.l1ReadMisses();
        tp.pivotChain.push_back(
            {family.pivots[p], cascade.counts(),
             opts.solo ? pivot_solo[p] : GhostCounts{}});
        tp.configs.resize(n3);
        for (std::size_t m = 0; m < n3; ++m) {
            ConfigProfile &cp = tp.configs[m];
            cp.spec = family.l3.configs[m];
            cp.filtered = filtered[m];
            if (opts.solo)
                cp.solo = member_solo[m];
            if (opts.faBound) {
                const trace::StackDistanceAnalyzer &a =
                    fa[fa_of_config[m]].analyzer;
                cp.faMissRatio = a.missRatio(cp.spec.sizeBytes /
                                             cp.spec.blockBytes);
                cp.faCompulsory = a.infiniteCount();
            }
        }
    }
    return out;
}

std::vector<TraceProfile>
profileCascadeTrace(const hier::HierarchyParams &base,
                    const CascadeFamilySpec &family,
                    const std::vector<trace::MemRef> &refs,
                    std::uint64_t warmup_refs,
                    const ProfileOptions &opts)
{
    return profileCascadeTrace(base, family,
                               trace::RefSpan{refs.data(),
                                              refs.size()},
                               warmup_refs, opts);
}

std::vector<std::vector<TraceProfile>>
profileCascadeSuite(const hier::HierarchyParams &base,
                    const CascadeFamilySpec &family,
                    const expt::TraceStore &store, std::size_t jobs,
                    const ProfileOptions &opts)
{
    const std::size_t n_traces = store.size();
    std::vector<std::vector<TraceProfile>> out(
        family.pivots.size(),
        std::vector<TraceProfile>(n_traces));
    parallelFor(jobs, n_traces, [&](std::size_t t) {
        std::vector<TraceProfile> per_pivot = profileCascadeTrace(
            base, family, store.traces()[t],
            expt::scaledWarmup(store.specs()[t]), opts);
        for (std::size_t p = 0; p < per_pivot.size(); ++p) {
            per_pivot[p].traceName = store.specs()[t].name;
            out[p][t] = std::move(per_pivot[p]);
        }
    });
    return out;
}

} // namespace onepass
} // namespace mlc
