#include "onepass/grid.hh"

#include "onepass/model_timing.hh"
#include "util/logging.hh"

namespace mlc {
namespace onepass {

expt::DesignSpaceGrid
gridFromProfiles(const hier::HierarchyParams &base,
                 const std::vector<std::uint64_t> &sizes,
                 const std::vector<std::uint32_t> &cycles,
                 const std::vector<TraceProfile> &profiles)
{
    if (profiles.empty())
        mlc_panic("gridFromProfiles: no trace profiles");
    for (const TraceProfile &p : profiles)
        if (p.configs.size() != sizes.size())
            mlc_panic("gridFromProfiles: profile '", p.traceName,
                      "' has ", p.configs.size(),
                      " configs for ", sizes.size(), " sizes");

    const std::uint32_t assoc =
        base.levels.empty() ? 1 : base.levels[0].geometry.assoc;
    expt::DesignSpaceGrid grid(sizes, cycles);
    for (std::size_t c = 0; c < cycles.size(); ++c) {
        // The model depends on the cycle axis only (n_L2 scales
        // with the L2 cycle time; size changes no cost term), so
        // one EqTimingModel serves the whole column.
        const EqTimingModel model = EqTimingModel::forMachine(
            base.withL2(sizes[0], cycles[c], assoc));
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            double sum = 0.0;
            for (const TraceProfile &p : profiles)
                sum += model.relExec(p, s);
            grid.set(s, c,
                     sum / static_cast<double>(profiles.size()));
        }
    }
    return grid;
}

expt::DesignSpaceGrid
buildGrid(const hier::HierarchyParams &base,
          const std::vector<std::uint64_t> &sizes,
          const std::vector<std::uint32_t> &cycles,
          const expt::TraceStore &store, std::size_t jobs,
          std::size_t shards)
{
    const FamilySpec family = FamilySpec::l2Grid(base, sizes);
    ProfileOptions opts;
    opts.shards = shards;
    const std::vector<TraceProfile> profiles =
        profileSuite(base, family, store, jobs, opts);
    return gridFromProfiles(base, sizes, cycles, profiles);
}

} // namespace onepass
} // namespace mlc
