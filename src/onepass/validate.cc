#include "onepass/validate.hh"

#include "expt/runner.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace onepass {

bool
CrossCheckReport::allMatch() const
{
    return mismatchCount() == 0;
}

std::size_t
CrossCheckReport::mismatchCount() const
{
    std::size_t n = 0;
    for (const CrossCheckRow &row : rows)
        if (!row.match())
            ++n;
    return n;
}

void
CrossCheckReport::print(std::ostream &os) const
{
    if (allMatch()) {
        os << "cross-check: all " << rows.size()
           << " (trace, config) pairs match exactly\n";
        return;
    }
    for (const CrossCheckRow &row : rows) {
        if (row.match())
            continue;
        os << "MISMATCH " << row.traceName << " "
           << row.spec.toString() << ": onepass "
           << row.onepassMisses << "/" << row.onepassReads
           << " vs timing " << row.timingMisses << "/"
           << row.timingReads;
        if (row.onepassSolo >= 0.0 || row.timingSolo >= 0.0)
            os << ", solo " << row.onepassSolo << " vs "
               << row.timingSolo;
        if (!row.l1Match)
            os << " (L1 counts differ)";
        if (!row.pivotMatch)
            os << " (pivot counts differ)";
        os << "\n";
    }
    os << "cross-check: " << mismatchCount() << " of "
       << rows.size() << " pairs mismatch\n";
}

CrossCheckReport
crossCheck(const hier::HierarchyParams &base,
           const FamilySpec &family, const expt::TraceStore &store,
           std::size_t jobs, bool solo)
{
    ProfileOptions opts;
    opts.solo = solo;
    const std::vector<TraceProfile> profiles =
        profileSuite(base, family, store, jobs, opts);

    const std::size_t n_configs = family.configs.size();
    const std::size_t n_rows = store.size() * n_configs;
    CrossCheckReport report;
    report.rows.resize(n_rows);

    parallelFor(jobs, n_rows, [&](std::size_t i) {
        const std::size_t t = i / n_configs;
        const std::size_t c = i % n_configs;
        const GhostCacheSpec &spec = family.configs[c];

        hier::HierarchyParams p = base;
        if (p.levels.empty())
            mlc_panic("crossCheck: base machine has no downstream "
                      "level");
        p.levels[0].geometry.sizeBytes = spec.sizeBytes;
        p.levels[0].geometry.assoc = spec.assoc;
        p.levels[0].geometry.blockBytes = spec.blockBytes;
        // Keep fetch == block when the family varies block size so
        // finalize() never sees a stale sub-block/fetch-group ratio.
        p.levels[0].fetchBytes = spec.blockBytes;
        p.measureSolo = solo;

        const hier::SimResults r = expt::runOnTrace(
            p, store.traces()[t],
            expt::scaledWarmup(store.specs()[t]));

        const TraceProfile &prof = profiles[t];
        const ConfigProfile &cp = prof.configs[c];
        CrossCheckRow row;
        row.traceName = store.specs()[t].name;
        row.spec = spec;
        row.onepassReads = cp.filtered.reads;
        row.onepassMisses = cp.filtered.readMisses;
        row.timingReads = r.levels[1].readRequests;
        row.timingMisses = r.levels[1].readMisses;
        row.l1Match =
            r.levels[0].readRequests == prof.l1ReadRequests &&
            r.levels[0].readMisses == prof.l1ReadMisses;
        if (solo) {
            // Identical integer divisions on both sides, so the
            // doubles compare bitwise-equal when the counts agree.
            row.onepassSolo = cp.solo.localMissRatio();
            row.timingSolo = r.levels[1].soloMissRatio;
        }
        report.rows[i] = row;
    });
    return report;
}

CrossCheckReport
crossCheckCascade(const hier::HierarchyParams &base,
                  const CascadeFamilySpec &family,
                  const expt::TraceStore &store, std::size_t jobs,
                  bool solo)
{
    ProfileOptions opts;
    opts.solo = solo;
    const std::vector<std::vector<TraceProfile>> profiles =
        profileCascadeSuite(base, family, store, jobs, opts);

    const std::size_t n_pivots = family.pivots.size();
    const std::size_t n_configs = family.l3.configs.size();
    const std::size_t n_rows =
        store.size() * n_pivots * n_configs;
    CrossCheckReport report;
    report.rows.resize(n_rows);

    parallelFor(jobs, n_rows, [&](std::size_t i) {
        const std::size_t t = i / (n_pivots * n_configs);
        const std::size_t p = (i / n_configs) % n_pivots;
        const std::size_t c = i % n_configs;
        const GhostCacheSpec &pivot = family.pivots[p];
        const GhostCacheSpec &spec = family.l3.configs[c];

        hier::HierarchyParams params = base;
        if (params.levels.size() < 2)
            mlc_panic("crossCheckCascade: base machine has fewer "
                      "than two downstream levels");
        params.levels[0].geometry.sizeBytes = pivot.sizeBytes;
        params.levels[0].geometry.assoc = pivot.assoc;
        params.levels[0].geometry.blockBytes = pivot.blockBytes;
        params.levels[0].fetchBytes = pivot.blockBytes;
        params.levels[1].geometry.sizeBytes = spec.sizeBytes;
        params.levels[1].geometry.assoc = spec.assoc;
        params.levels[1].geometry.blockBytes = spec.blockBytes;
        params.levels[1].fetchBytes = spec.blockBytes;
        params.measureSolo = solo;

        const hier::SimResults r = expt::runOnTrace(
            params, store.traces()[t],
            expt::scaledWarmup(store.specs()[t]));

        const TraceProfile &prof = profiles[p][t];
        const ConfigProfile &cp = prof.configs[c];
        const PivotLink &link = prof.pivotChain[0];
        CrossCheckRow row;
        row.traceName = store.specs()[t].name;
        row.spec = spec;
        row.onepassReads = cp.filtered.reads;
        row.onepassMisses = cp.filtered.readMisses;
        row.timingReads = r.levels[2].readRequests;
        row.timingMisses = r.levels[2].readMisses;
        row.l1Match =
            r.levels[0].readRequests == prof.l1ReadRequests &&
            r.levels[0].readMisses == prof.l1ReadMisses;
        row.pivotMatch =
            r.levels[1].readRequests == link.counts.reads &&
            r.levels[1].readMisses == link.counts.readMisses;
        if (solo) {
            // Identical integer divisions on both sides, so the
            // doubles compare bitwise-equal when the counts agree.
            row.onepassSolo = cp.solo.localMissRatio();
            row.timingSolo = r.levels[2].soloMissRatio;
            row.pivotMatch =
                row.pivotMatch &&
                r.levels[1].soloMissRatio ==
                    link.solo.localMissRatio();
        }
        report.rows[i] = row;
    });
    return report;
}

} // namespace onepass
} // namespace mlc
