/**
 * @file
 * Functional replica of the first level of a hierarchy, emitting
 * the event stream a second-level cache would observe.
 *
 * HierarchySimulator::handleRef keeps its functional state updates
 * strictly independent of timing (the `timed` flag gates only the
 * cycle accounting), and under the default write-around policy
 * nothing a downstream level does ever feeds back upstream. The L2
 * request stream is therefore a pure function of (L1 configuration,
 * trace), which is what makes one pass over the trace sufficient to
 * price a whole family of L2s: replay the L1s once, hand each
 * departing event to every ghost array.
 *
 * The emitted event order per reference matches hierarchy.cc
 * exactly — demand fill first, then the rest of the fetch group,
 * then dirty-victim write-backs, then a forwarded store if any —
 * because LRU state downstream depends on that order.
 */

#ifndef MLC_ONEPASS_L1_FILTER_HH
#define MLC_ONEPASS_L1_FILTER_HH

#include <cstdint>
#include <memory>

#include "cache/cache.hh"
#include "hier/hierarchy_config.hh"
#include "trace/mem_ref.hh"

namespace mlc {
namespace onepass {

/**
 * The split (or unified) L1 of @p params, replayed functionally.
 *
 * The Sink passed to step() receives the downstream traffic:
 *
 *   sink.onRead(Addr addr, bool counted)  — a fill request leaving
 *       L1; @p counted marks the demand request of a read-origin
 *       miss (the only requests in the paper's L2 read miss
 *       ratios — store-origin and fetch-group fills still access
 *       the level below but are not counted as L2 read requests).
 *   sink.onWrite(Addr base)               — a dirty victim
 *       write-back or a forwarded store headed downstream.
 */
class L1Filter
{
  public:
    /** @param params is finalized internally (copy). */
    explicit L1Filter(hier::HierarchyParams params);

    /** Replay one CPU reference through the L1s. */
    template <typename Sink>
    void
    step(const trace::MemRef &ref, Sink &&sink)
    {
        cache::Cache *l1 = l1d_.get();
        if (ref.isInst()) {
            ++instructions_;
            ++ifetches_;
            if (l1i_)
                l1 = l1i_.get();
        } else if (ref.type == trace::RefType::Load) {
            ++loads_;
        } else {
            ++stores_;
        }

        if (ref.isRead()) {
            // Same inline fast path as the timing simulator: a read
            // hit updates counters and recency without touching an
            // AccessOutcome.
            if (l1->tryReadHit(ref))
                return;
            l1->access(ref, outcome_);
            if (outcome_.hit)
                return;
            emit(outcome_, true, sink);
            return;
        }

        // Store: a write-back hit stays local (fast path, same
        // contract as the read one); everything else sends
        // fills/write-backs and possibly the store itself down.
        if (l1->tryStoreHit(ref))
            return;
        l1->access(ref, outcome_);
        if (outcome_.hit && !outcome_.forwardWrite)
            return;
        if (!outcome_.fills.empty() || !outcome_.writebacks.empty())
            emit(outcome_, false, sink);
        if (outcome_.forwardWrite)
            sink.onWrite(ref.addr & ~Addr{3});
    }

    /** Zero all counters, keeping tag state (post-warm-up). */
    void resetCounts();

    /** @{ @name Reference-mix counters since the last reset */
    std::uint64_t instructions() const { return instructions_; }
    std::uint64_t ifetches() const { return ifetches_; }
    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t cpuReads() const { return ifetches_ + loads_; }
    /** @} */

    /** @{ @name Combined L1 read traffic (split I+D summed) */
    std::uint64_t l1ReadRequests() const;
    std::uint64_t l1ReadMisses() const;
    /** @} */

    const hier::HierarchyParams &params() const { return params_; }

  private:
    template <typename Sink>
    void
    emit(const cache::AccessOutcome &outcome, bool read_origin,
         Sink &&sink)
    {
        // Mirrors fillFromBelow: only the leading (demand) fill of
        // a read-origin miss is a counted L2 read request.
        bool first = true;
        for (Addr fill : outcome.fills) {
            sink.onRead(fill, read_origin && first);
            first = false;
        }
        for (const cache::WritebackReq &victim : outcome.writebacks)
            sink.onWrite(victim.base);
    }

    hier::HierarchyParams params_;
    std::unique_ptr<cache::Cache> l1i_; //!< null if unified
    std::unique_ptr<cache::Cache> l1d_;
    cache::AccessOutcome outcome_;

    std::uint64_t instructions_ = 0;
    std::uint64_t ifetches_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
};

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_L1_FILTER_HH
