/**
 * @file
 * Cross-check harness: one-pass counts versus the timing simulator.
 *
 * The one-pass engine's claim is that its per-config read request
 * and miss counts are *bit-exact* against a full
 * hier::HierarchySimulator run of the same machine — integer
 * equality, not tolerance. crossCheck() earns that claim the
 * expensive way: it profiles the family once, then simulates every
 * (trace, config) pair individually and compares the integers (and,
 * when requested, the solo read miss ratios, whose doubles come
 * from identical integer divisions on both sides and must therefore
 * match bitwise too).
 *
 * Execution *time* is outside the comparison by design: the
 * one-pass side models it analytically (see model_timing.hh), so
 * the two engines agree on miss ratios exactly and on timing only
 * approximately.
 */

#ifndef MLC_ONEPASS_VALIDATE_HH
#define MLC_ONEPASS_VALIDATE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "expt/workload_suite.hh"
#include "hier/hierarchy_config.hh"
#include "onepass/cascade.hh"
#include "onepass/engine.hh"

namespace mlc {
namespace onepass {

/** One (trace, config) comparison. */
struct CrossCheckRow
{
    std::string traceName;
    GhostCacheSpec spec;

    /** @{ @name One-pass side */
    std::uint64_t onepassReads = 0;
    std::uint64_t onepassMisses = 0;
    double onepassSolo = -1.0;
    /** @} */

    /** @{ @name Timing-simulator side */
    std::uint64_t timingReads = 0;
    std::uint64_t timingMisses = 0;
    double timingSolo = -1.0;
    /** @} */

    bool l1Match = true; //!< L1 requests/misses agreed too
    /** Pivot-level requests/misses (and solo, when compared)
     *  agreed; always true for two-level rows. */
    bool pivotMatch = true;

    bool
    match() const
    {
        return l1Match && pivotMatch &&
               onepassReads == timingReads &&
               onepassMisses == timingMisses &&
               onepassSolo == timingSolo;
    }
};

/** All comparisons of one harness run. */
struct CrossCheckReport
{
    std::vector<CrossCheckRow> rows;

    bool allMatch() const;
    std::size_t mismatchCount() const;

    /** One line per mismatch (or a single all-match line). */
    void print(std::ostream &os) const;
};

/**
 * Compare @p family's one-pass counts against per-config timing
 * simulation over every trace of @p store. The timing side runs
 * base with its first downstream level reshaped to each family
 * member; @p jobs parallelizes the (trace x config) simulations.
 * @param solo also compare solo read miss ratios.
 */
CrossCheckReport crossCheck(const hier::HierarchyParams &base,
                            const FamilySpec &family,
                            const expt::TraceStore &store,
                            std::size_t jobs = 1, bool solo = false);

/**
 * The three-level equivalent: cascade-profile the joint family
 * once, then simulate every (trace, pivot, member) triple on base
 * with levels[0] reshaped to the pivot and levels[1] to the member,
 * comparing the member's L3 counts (the row's reads/misses), the
 * pivot's L2 counts and solo ratio (folded into pivotMatch), and
 * the L1 counts — all integer-exact, solo ratios bitwise.
 */
CrossCheckReport
crossCheckCascade(const hier::HierarchyParams &base,
                  const CascadeFamilySpec &family,
                  const expt::TraceStore &store,
                  std::size_t jobs = 1, bool solo = false);

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_VALIDATE_HH
