/**
 * @file
 * Hierarchical ghost filtering: one-pass profiling of a joint
 * (L2 family x L3 family) grid.
 *
 * The two-level engine works because the L2 request stream is a
 * pure function of (L1 configuration, trace): functional cache
 * state never depends on timing, and write-around levels never
 * feed back upstream. The same argument applies one level down —
 * fix one *pivot* L2 configuration and the L3 request stream is a
 * pure function of (L1 config, pivot config, trace). A
 * CascadeFilter therefore replays the pivot exactly (a single
 * cache::Cache fed the L1-filtered event log, emitting fills,
 * write-backs and forwarded writes in the same order
 * hier::HierarchySimulator would) and records the departing stream
 * as a second, far smaller FilteredEventLog. A ghost-tag sweep of
 * that log prices every L3 family member at once, while the
 * ordinary forest over the L1 log continues to cover every L2
 * member — so an N_L2 x N_L3 grid costs one L1 replay plus N_L2
 * cheap filtered replays instead of N_L2 * N_L3 timing runs.
 *
 * Exactness: per (pivot, member) the L3 read request and miss
 * counts equal a full three-level HierarchySimulator run bit for
 * bit (onepass::crossCheckCascade), including the pivot's own
 * counts, which double as a free invariant — they must match the
 * L2 ghost forest's counts for the same spec, and
 * profileCascadeTrace panics if they ever disagree.
 */

#ifndef MLC_ONEPASS_CASCADE_HH
#define MLC_ONEPASS_CASCADE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "onepass/engine.hh"
#include "onepass/sharded.hh"

namespace mlc {
namespace onepass {

/** The joint family profiled by one cascade pass: every pivot
 *  (intermediate, exactly-replayed) configuration crossed with
 *  every downstream family member. */
struct CascadeFamilySpec
{
    /** L2 configurations, one exact filtered replay each. */
    std::vector<GhostCacheSpec> pivots;
    /** The L3 family swept by ghost tags under every pivot. */
    FamilySpec l3;

    /**
     * Canonical identity string: the pivot family joined to the
     * downstream family key ("256KB/1-way/32B|512KB/1-way/32B=>"
     * + l3.key()). Two equal keys mean profile-for-profile equal
     * cascades — what serve::ProfileCache keys three-level entries
     * on (the "pivot hash" of the cache key).
     */
    std::string key() const;
};

/**
 * Exact functional replay of one pivot configuration, built from
 * the base machine's first downstream level reshaped to the pivot
 * geometry (fetch == block, like every ghost family member) and
 * seeded exactly as hier::HierarchySimulator seeds that level, so
 * even a Random-replacement pivot evolves identically.
 *
 * Feed it the L1-filtered event stream; it emits the L2-filtered
 * stream into any sink with the FilteredEventLog interface
 * (onRead/onWrite) and accumulates the pivot's own demand counts.
 */
class CascadeFilter
{
  public:
    CascadeFilter(const hier::HierarchyParams &base,
                  const GhostCacheSpec &pivot);

    /** A demand read arriving at the pivot (@p counted = of read
     *  origin). Emits, on a miss: fills demand-first (only the
     *  demand fill of a counted read stays counted), then dirty
     *  victims — the order hierarchy.cc's fillFromBelow uses. */
    template <typename Sink>
    void
    onRead(Addr addr, bool counted, Sink &&sink)
    {
        if (counted)
            ++counts_.reads;
        else
            ++counts_.extraAccesses;
        const trace::MemRef req = trace::makeLoad(addr);
        // Same fast path as the timing simulator's caches: a hit
        // leaves no outcome to propagate (bit-identical contract,
        // see cache::Cache::tryReadHit).
        if (cache_.tryReadHit(req))
            return;
        cache_.access(req, outcome_);
        if (outcome_.hit)
            return;
        if (counted)
            ++counts_.readMisses;
        else
            ++counts_.extraMisses;
        bool first = true;
        for (Addr fill : outcome_.fills) {
            sink.onRead(fill, counted && first);
            first = false;
        }
        for (const cache::WritebackReq &victim :
             outcome_.writebacks)
            sink.onWrite(victim.base);
    }

    /** A downstream-bound write (victim write-back or forwarded
     *  store), mirroring hierarchy.cc's queueDownstreamWrite arms:
     *  miss + write-around passes it on; miss + allocate installs
     *  dirty and emits the fetch (uncounted) plus any displaced
     *  victim; a write-through hit also forwards the write. */
    template <typename Sink>
    void
    onWrite(Addr base, Sink &&sink)
    {
        if (cache_.absorbWrite(base)) {
            if (writeThrough_)
                sink.onWrite(base);
            return;
        }
        if (!writeAllocates_) {
            sink.onWrite(base);
            return;
        }
        cache_.absorbWriteAllocate(base, outcome_);
        for (Addr fill : outcome_.fills)
            sink.onRead(fill, false);
        for (const cache::WritebackReq &victim :
             outcome_.writebacks)
            sink.onWrite(victim.base);
    }

    /** Zero the demand counters, keeping tag state (warm-up). */
    void resetCounts() { counts_ = GhostCounts{}; }

    /** Demand traffic at the pivot since the last reset: counted
     *  reads in reads/readMisses, uncounted in extra*. */
    const GhostCounts &counts() const { return counts_; }

    /** The pivot's finalized cache parameters. */
    const cache::CacheParams &params() const
    {
        return cache_.params();
    }

  private:
    cache::Cache cache_;
    cache::AccessOutcome outcome_;
    GhostCounts counts_;
    bool writeThrough_;
    bool writeAllocates_;
};

/**
 * Replay @p in through @p filter, recording the departing stream
 * into @p out. The warm boundary transfers: when the sweep reaches
 * in.warmEvents the filter's counters reset and out.warmEvents is
 * pinned to the downstream position (including the past-the-end
 * case, so a warm point after the last upstream event still zeroes
 * every downstream count).
 */
void filterEventLog(const FilteredEventLog &in,
                    CascadeFilter &filter, FilteredEventLog &out);

/**
 * Profile the joint family over one trace: one serial L1 replay,
 * one CascadeFilter replay per pivot, one sharded ghost sweep of
 * each L2-filtered log. Returns one TraceProfile per pivot, in
 * pivot order: configs covers the L3 family and pivotChain carries
 * the pivot's spec and exact counts (plus solo counts under
 * ProfileOptions::solo; member solo and FA-bound outputs are
 * pivot-independent and shared across the returned profiles).
 *
 * @p base must have at least two downstream levels; levels[0]
 * stands in for the pivots, levels[1] for the L3 family, and both
 * positions must be ghost-modellable (GhostPolicies::fromLevel).
 * Block-size ordering l1 <= pivot <= member is enforced.
 */
std::vector<TraceProfile>
profileCascadeTrace(const hier::HierarchyParams &base,
                    const CascadeFamilySpec &family,
                    trace::RefSpan refs, std::uint64_t warmup_refs,
                    const ProfileOptions &opts = {});

/** Convenience overload for materialized vectors. */
std::vector<TraceProfile>
profileCascadeTrace(const hier::HierarchyParams &base,
                    const CascadeFamilySpec &family,
                    const std::vector<trace::MemRef> &refs,
                    std::uint64_t warmup_refs,
                    const ProfileOptions &opts = {});

/**
 * Cascade-profile every trace of @p store, parallel across traces
 * (shards parallelize within each trace's sweeps). Indexed
 * [pivot][trace], so out[p] is directly a two-level-style profile
 * vector for pivot p. Bit-identical for any @p jobs.
 */
std::vector<std::vector<TraceProfile>>
profileCascadeSuite(const hier::HierarchyParams &base,
                    const CascadeFamilySpec &family,
                    const expt::TraceStore &store,
                    std::size_t jobs = 1,
                    const ProfileOptions &opts = {});

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_CASCADE_HH
