/**
 * @file
 * Set-partitioned (sharded) execution of the one-pass profile.
 *
 * The scalar profileTrace() interleaves the L1 replay with the
 * ghost-forest updates. The sharded path splits them: one serial
 * replay of the L1s records the departing event stream into a
 * compact log (8 bytes per event), then S workers sweep that log
 * in parallel, each owning the sets `set % S == shard` of every
 * family member. Sets of a physically-indexed cache are
 * independent — an access to set A never reads or writes the tags,
 * stamps or victim choice of set B — so partitioning by set index
 * touches disjoint state, and LRU order inside a set depends only
 * on the *relative* order of that set's accesses, which each shard
 * preserves by scanning the log in order. Per-shard integer counts
 * summed in fixed shard order therefore reproduce the scalar
 * counts bit for bit, for every shard count (DESIGN.md §5f).
 *
 * Members with fewer sets than shards are clamped: member m is
 * split S_m = min(S, sets_m) ways, so the degenerate one-set cache
 * is processed entirely by shard 0 and still merges exactly.
 */

#ifndef MLC_ONEPASS_SHARDED_HH
#define MLC_ONEPASS_SHARDED_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "onepass/engine.hh"
#include "trace/mem_ref.hh"

namespace mlc {
namespace onepass {

/**
 * The post-L1 event stream, one 64-bit word per event: the kind in
 * the low two bits of the address. Every emitted address is at
 * least 4-byte aligned (fills and write-backs are block/sector
 * bases, forwarded stores are word-aligned by L1Filter), and every
 * consumer shifts by a block size of >= 4 bytes, so the packed
 * bits are recovered exactly and never leak into a block number.
 */
struct FilteredEventLog
{
    enum Kind : std::uint64_t
    {
        ReadCounted = 0,   //!< demand read of read origin
        ReadUncounted = 1, //!< store-origin or fetch-group fill
        Write = 2,         //!< victim write-back / forwarded store
    };
    static constexpr std::uint64_t kKindMask = 3;

    std::vector<std::uint64_t> events;
    /** Events recorded before the warm-up boundary: each shard
     *  zeroes its counters when its sweep reaches this index. */
    std::size_t warmEvents = 0;

    /** @{ @name L1Filter sink interface */
    void
    onRead(Addr addr, bool counted)
    {
        events.push_back((addr & ~kKindMask) |
                         (counted ? ReadCounted : ReadUncounted));
    }
    void
    onWrite(Addr addr)
    {
        events.push_back((addr & ~kKindMask) | Write);
    }
    /** @} */
};

/**
 * The sharded equivalent of profileTrace(): identical results
 * (bit for bit, including solo and FA-bound outputs) for any
 * @p opts.shards >= 1, with the forest sweep partitioned across
 * min(shards, hardware) ThreadPool workers. profileTrace()
 * dispatches here when opts.shards > 1; call it rather than this.
 */
TraceProfile profileTraceSharded(const hier::HierarchyParams &base,
                                 const FamilySpec &family,
                                 trace::RefSpan refs,
                                 std::uint64_t warmup_refs,
                                 const ProfileOptions &opts);

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_SHARDED_HH
