/**
 * @file
 * Set-partitioned (sharded) execution of the one-pass profile.
 *
 * The scalar profileTrace() interleaves the L1 replay with the
 * ghost-forest updates. The sharded path splits them: one serial
 * replay of the L1s records the departing event stream into a
 * compact log (8 bytes per event), then S workers sweep that log
 * in parallel, each owning the sets `set % S == shard` of every
 * family member. Sets of a physically-indexed cache are
 * independent — an access to set A never reads or writes the tags,
 * stamps or victim choice of set B — so partitioning by set index
 * touches disjoint state, and LRU order inside a set depends only
 * on the *relative* order of that set's accesses, which each shard
 * preserves by scanning the log in order. Per-shard integer counts
 * summed in fixed shard order therefore reproduce the scalar
 * counts bit for bit, for every shard count (DESIGN.md §5f).
 *
 * Members with fewer sets than shards are clamped: member m is
 * split S_m = min(S, sets_m) ways, so the degenerate one-set cache
 * is processed entirely by shard 0 and still merges exactly.
 */

#ifndef MLC_ONEPASS_SHARDED_HH
#define MLC_ONEPASS_SHARDED_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "onepass/engine.hh"
#include "trace/mem_ref.hh"

namespace mlc {
namespace onepass {

/**
 * The post-L1 event stream, one 64-bit word per event: the kind in
 * the low two bits of the address. Every emitted address is at
 * least 4-byte aligned (fills and write-backs are block/sector
 * bases, forwarded stores are word-aligned by L1Filter), and every
 * consumer shifts by a block size of >= 4 bytes, so the packed
 * bits are recovered exactly and never leak into a block number.
 */
struct FilteredEventLog
{
    enum Kind : std::uint64_t
    {
        ReadCounted = 0,   //!< demand read of read origin
        ReadUncounted = 1, //!< store-origin or fetch-group fill
        Write = 2,         //!< victim write-back / forwarded store
    };
    static constexpr std::uint64_t kKindMask = 3;
    /** warmEvents value meaning "no warm boundary recorded". */
    static constexpr std::size_t kNoBoundary =
        static_cast<std::size_t>(-1);

    std::vector<std::uint64_t> events;
    /** Events recorded before the warm-up boundary: each shard
     *  zeroes its counters when its sweep reaches this index. A
     *  boundary at or past events.size() (the warm point fell after
     *  the last departing event) zeroes the final counts; kNoBoundary
     *  disables the reset entirely. */
    std::size_t warmEvents = 0;

    /** @{ @name L1Filter sink interface */
    void
    onRead(Addr addr, bool counted)
    {
        events.push_back((addr & ~kKindMask) |
                         (counted ? ReadCounted : ReadUncounted));
    }
    void
    onWrite(Addr addr)
    {
        events.push_back((addr & ~kKindMask) | Write);
    }
    /** @} */
};

/**
 * The sharded equivalent of profileTrace(): identical results
 * (bit for bit, including solo and FA-bound outputs) for any
 * @p opts.shards >= 1, with the forest sweep partitioned across
 * min(shards, hardware) ThreadPool workers. profileTrace()
 * dispatches here when opts.shards > 1; call it rather than this.
 */
TraceProfile profileTraceSharded(const hier::HierarchyParams &base,
                                 const FamilySpec &family,
                                 trace::RefSpan refs,
                                 std::uint64_t warmup_refs,
                                 const ProfileOptions &opts);

/**
 * Sweep one recorded event log over a whole family: the
 * set-partitioned ghost-forest pass of profileTraceSharded(),
 * reusable for any FilteredEventLog — the L1-filtered stream or a
 * CascadeFilter's L2-filtered stream (cascade.hh). Counts are
 * merged in fixed (member-major, shard-minor) order and are
 * bit-identical for every @p shards >= 1. ReadCounted events land
 * in reads/readMisses, ReadUncounted in extraAccesses/extraMisses,
 * Write events update recency (allocating only when @p policies
 * says downstream write misses allocate) and count nothing.
 */
std::vector<GhostCounts>
sweepEventLog(const FilteredEventLog &log,
              const std::vector<GhostCacheSpec> &configs,
              const GhostPolicies &policies, std::size_t shards = 1);

/**
 * The solo half of the sharded sweep: every family member replays
 * the raw CPU reference stream stand-alone (no upstream filter),
 * set-partitioned exactly like sweepEventLog(). Reads land in
 * reads/readMisses, stores in extraAccesses/extraMisses (a store
 * miss allocates only under @p policies write-allocate), matching
 * GhostTagForest::soloAccess. Counters reset at @p warmup_refs.
 */
std::vector<GhostCounts>
sweepSoloStream(trace::RefSpan refs, std::uint64_t warmup_refs,
                const std::vector<GhostCacheSpec> &configs,
                const GhostPolicies &policies,
                std::size_t shards = 1);

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_SHARDED_HH
