/**
 * @file
 * Ghost tag arrays: exact functional miss counting for a *family*
 * of caches over one shared address stream.
 *
 * A GhostTagArray is the minimal state needed to answer "would this
 * access hit?" for one set-associative LRU cache — tags and recency
 * stamps, no data, no dirty bits, no timing. A GhostTagForest holds
 * one array per member of a cache family (size x associativity x
 * block size) and applies every incoming event to all of them,
 * decoding the address into a block number once per distinct block
 * size rather than once per configuration.
 *
 * Exactness contract: for LRU (any associativity) and for
 * direct-mapped caches (any nominal policy — a 1-way set has no
 * choice), a GhostTagArray's hit/miss sequence is identical to
 * cache::Cache / cache::TagArray fed the same accesses: recency
 * stamps advance on exactly the same events (touch on hit, install
 * on miss) and the victim scan prefers invalid ways in way order,
 * then the minimum stamp — the same tie-breaking TagArray uses.
 * tests/onepass/test_ghost_tags.cc holds a randomized property test
 * of this equivalence. Random/FIFO replacement above 1 way,
 * sub-blocking and prefetch are out of scope and rejected at
 * construction.
 */

#ifndef MLC_ONEPASS_GHOST_TAGS_HH
#define MLC_ONEPASS_GHOST_TAGS_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "trace/mem_ref.hh"

namespace mlc {
namespace onepass {

/** Geometry of one family member. */
struct GhostCacheSpec
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t assoc = 1; //!< ways per set (1 = direct-mapped)
    std::uint32_t blockBytes = 32;

    bool
    operator==(const GhostCacheSpec &o) const
    {
        return sizeBytes == o.sizeBytes && assoc == o.assoc &&
               blockBytes == o.blockBytes;
    }

    std::string toString() const;
};

/** Per-configuration access/miss counters. */
struct GhostCounts
{
    /**
     * Paper-visible read requests and misses: for a second-level
     * family these are the *demand* requests of read origin (the
     * quantities behind the local and global read miss ratios);
     * for a solo family they are the CPU's reads.
     */
    std::uint64_t reads = 0;
    std::uint64_t readMisses = 0;

    /** State-changing accesses outside the ratio: store-origin
     *  demand fills and non-demand group fills (filtered family),
     *  stores (solo family). */
    std::uint64_t extraAccesses = 0;
    std::uint64_t extraMisses = 0;

    /** Misses / reads (the local read miss ratio). */
    double localMissRatio() const;
    /** Misses / @p cpu_reads (the global read miss ratio). */
    double globalMissRatio(std::uint64_t cpu_reads) const;
};

/**
 * Branch-free hit scan over one SoA set row: 1 + the matching way,
 * or 0 on a miss. A tag lives in at most one valid way (installs
 * only happen on misses), so the sum over ways of
 * match * (way + 1) *is* the answer, and a plain sum reduction of
 * loads is the form the auto-vectorizer handles on every x86-64
 * level with 64-bit lane compares (v2 and up) — unlike a bitmask
 * build, whose per-way variable shift needs AVX2.
 *
 * Shared between the exact GhostTagArray and the sampled miniature
 * arrays of mrc::SampledGhostForest, so both engines scan tags with
 * the same code and the same vectorization story.
 */
inline std::uint64_t
ghostHitScan(const std::uint64_t *tags, const std::uint64_t *stamps,
             std::uint32_t ways, std::uint64_t tag)
{
    std::uint64_t hit = 0;
    for (std::uint32_t w = 0; w < ways; ++w)
        hit += static_cast<std::uint64_t>(
                   (stamps[w] != 0) & (tags[w] == tag)) *
               (w + 1);
    return hit;
}

/** One valid line of a ghost array, as reported by validLines(). */
struct GhostLine
{
    std::uint64_t set;
    std::uint64_t tag;
    std::uint64_t stamp;
};

/** Tags + LRU stamps of one ghost cache. Addresses are *block
 *  numbers* (byte address >> log2(blockBytes)); the forest does
 *  that shift once per block-size group.
 *
 *  Storage is structure-of-arrays (tags_ and stamps_ as separate
 *  vectors, the layout cache::TagArray proved out) so the per-way
 *  compare loop reduces to a branch-free sum reduction the
 *  compiler auto-vectorizes on targets with 64-bit lane compares
 *  (x86-64-v2 and up; see the MLC_MARCH CMake option). Build with
 *  -DMLC_VEC_REPORT=ON to see the vectorizer's verdict. */
class GhostTagArray
{
  public:
    explicit GhostTagArray(const GhostCacheSpec &spec);

    /**
     * A shard-local slice: @p sets rows (any count — a shard's
     * share of a set-partitioned array need not be a power of two)
     * of @p ways ways each. Only the *At() entry points are
     * meaningful on a slice; the block-indexed wrappers assume the
     * full power-of-two set count and are not usable.
     */
    GhostTagArray(std::uint64_t sets, std::uint32_t ways);

    /** Access with allocation (a read, or a write-allocate store):
     *  touch on hit, install-evicting-LRU on miss.
     *  @return true on hit. */
    bool
    touchOrInstall(std::uint64_t block)
    {
        return touchOrInstallAt(block & setMask_, block);
    }

    /** Access without allocation (an absorbed downstream write
     *  under write-around): touch on hit, no change on miss.
     *  @return true on hit. */
    bool
    touchOnly(std::uint64_t block)
    {
        return touchOnlyAt(block & setMask_, block);
    }

    /** As touchOrInstall, with the set row chosen by the caller
     *  (shard-local indexing); @p tag is the full block number. */
    bool touchOrInstallAt(std::uint64_t set, std::uint64_t tag);

    /** As touchOnly, with the set row chosen by the caller. */
    bool touchOnlyAt(std::uint64_t set, std::uint64_t tag);

    std::uint64_t validCount() const;

    /**
     * Every valid line, sorted by ascending stamp (LRU first, MRU
     * last) — the order a caller must re-insert them in to rebuild
     * an equivalent recency state in another array (what the
     * sampled forest's adaptive shrink does).
     */
    std::vector<GhostLine> validLines() const;

    std::uint64_t sets() const { return tags_.size() / ways_; }
    std::uint32_t ways() const { return ways_; }

  private:
    std::uint64_t setMask_ = 0;
    std::uint32_t ways_;
    std::uint64_t stamp_ = 0;
    /** SoA against stamps_: tags_[set*ways_+w] pairs with
     *  stamps_[set*ways_+w]. */
    std::vector<std::uint64_t> tags_;
    /** 0 = invalid; valid lines carry distinct stamps, so the
     *  victim scan's strict-min naturally prefers the lowest
     *  invalid way, exactly as TagArray::chooseVictim does. */
    std::vector<std::uint64_t> stamps_;
};

/** How the family treats state-changing events, mirrored from the
 *  cache::CacheParams of the level being modelled. */
struct GhostPolicies
{
    /** Stores that miss allocate (solo family only). */
    cache::AllocPolicy alloc = cache::AllocPolicy::WriteAllocate;
    /** Downstream writes that miss allocate (filtered family). */
    cache::DownstreamWriteMissPolicy downstreamWriteMiss =
        cache::DownstreamWriteMissPolicy::Around;

    /** Mirror the relevant policies of @p level; panics when the
     *  level uses features the ghost model cannot reproduce
     *  exactly (sub-blocking, prefetch, fetch != block, or a
     *  non-LRU policy with @p max_assoc > 1). */
    static GhostPolicies fromLevel(const cache::CacheParams &level,
                                   std::uint32_t max_assoc);
};

/** A family of ghost arrays sharing one decode pass. */
class GhostTagForest
{
  public:
    /**
     * @param specs family members; every sizeBytes/assoc/blockBytes
     *        must be a power of two with at least one set.
     */
    GhostTagForest(std::vector<GhostCacheSpec> specs,
                   GhostPolicies policies);

    /**
     * A demand read request reaching this level (filtered stream).
     * @param counted it is of read origin, i.e. it enters the
     *        local/global read miss ratios; store-origin fills
     *        update state through the extra counters instead.
     */
    void read(Addr addr, bool counted);

    /** A non-demand fill (fetch group / prefetch of the level
     *  above): allocates but never enters the read ratios. */
    void fill(Addr addr);

    /** A downstream write (victim write-back or forwarded store):
     *  touch on hit; on miss, allocate or pass around per the
     *  forest's DownstreamWriteMissPolicy. */
    void write(Addr addr);

    /** One raw CPU reference (solo families — Section 3's third
     *  miss-ratio definition). */
    void soloAccess(const trace::MemRef &ref);

    /** Zero all counters, keeping tag state (post-warm-up). */
    void resetCounts();

    const std::vector<GhostCacheSpec> &specs() const
    {
        return specs_;
    }
    const GhostCounts &counts(std::size_t config) const;

  private:
    /** Configs sharing one block size, so the byte-address shift
     *  happens once per group per event. */
    struct Group
    {
        unsigned blockShift;
        std::vector<std::size_t> members;
    };

    std::vector<GhostCacheSpec> specs_;
    GhostPolicies policies_;
    std::vector<GhostTagArray> arrays_;
    std::vector<GhostCounts> counts_;
    std::vector<Group> groups_;
};

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_GHOST_TAGS_HH
