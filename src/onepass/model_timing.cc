#include "onepass/model_timing.hh"

#include <algorithm>
#include <utility>

#include "mem/bus.hh"
#include "mem/main_memory.hh"
#include "mem/timing.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace mlc {
namespace onepass {

EqTimingModel
EqTimingModel::forMachine(hier::HierarchyParams params)
{
    params.finalize();
    if (params.levels.empty())
        mlc_panic("EqTimingModel: no downstream cache level");

    // n_k for each downstream cache level: the level's array read
    // plus the fill transfer back to the level above. Each bus
    // cycles at its level's rate and the first beat overlaps the
    // array read, so only the residual beats add time. Level 0's
    // upstream fill is the (widest) L1's; level k's is level k-1's.
    EqTimingModel m;
    std::uint64_t up_fill = std::max(
        params.l1d.fillRequestBytes(),
        params.splitL1 ? params.l1i.fillRequestBytes() : 0u);
    for (std::size_t k = 0; k < params.levels.size(); ++k) {
        const cache::CacheParams &level = params.levels[k];
        const std::uint64_t fill_beats =
            divCeil(up_fill, std::uint64_t{
                                 params.busWidthWords[k]} * 4u);
        m.levelCycles_.push_back(
            (level.readCycles * level.cycleNs +
             static_cast<double>(fill_beats - 1) * level.cycleNs) /
            params.cpuCycleNs);
        up_fill = level.fillRequestBytes();
    }

    // n_MMread: the DRAM read service including backplane beats,
    // fetching the deepest cache's fill. The Section 4 sweeps hold
    // this constant while the L2 cycle time varies, hence the
    // independent backplane clock.
    const double backplane_ns = params.backplaneCycleNs > 0.0
                                    ? params.backplaneCycleNs
                                    : params.levels.back().cycleNs;
    const mem::Bus backplane(params.busWidthWords.back(),
                             nsToTicks(backplane_ns));
    const mem::MainMemory memory(params.memory);
    const double mm_read_ns = ticksToNs(memory.readService(
        backplane, params.levels.back().fillRequestBytes()));

    m.nMMread_ = mm_read_ns / params.cpuCycleNs;
    m.writeExtra_ = (params.l1d.writeCycles - 1) *
                    params.l1d.cycleNs / params.cpuCycleNs;
    return m;
}

model::RefMix
EqTimingModel::mixOf(const TraceProfile &t)
{
    if (t.instructions == 0)
        mlc_panic("EqTimingModel: profile has no instructions "
                  "(empty measurement window?)");
    model::RefMix mix;
    mix.readsPerInstruction =
        static_cast<double>(t.cpuReads()) /
        static_cast<double>(t.instructions);
    mix.storesPerInstruction =
        static_cast<double>(t.stores) /
        static_cast<double>(t.instructions);
    return mix;
}

model::MultiLevelModel
EqTimingModel::modelFor(const TraceProfile &t,
                        std::size_t config) const
{
    if (config >= t.configs.size())
        mlc_panic("EqTimingModel: config index ", config,
                  " out of range (", t.configs.size(), ")");
    const double reads = static_cast<double>(t.cpuReads());
    if (reads == 0.0)
        mlc_panic("EqTimingModel: profile has no reads");

    // A profile's pivot chain supplies the intermediate levels'
    // miss counts: the machine's depth and the chain length must
    // describe the same hierarchy shape.
    if (t.pivotChain.size() + 1 != levelCycles_.size())
        mlc_panic("EqTimingModel: machine has ",
                  levelCycles_.size(),
                  " downstream cache levels but the profile "
                  "carries ", t.pivotChain.size(),
                  " pivot links (need depth - 1)");

    // Reads ride the pipeline at one cycle per *instruction*, so
    // per-read the base cost is instructions/reads; with the mix's
    // reads-per-instruction this contributes exactly 1 cycle per
    // instruction, matching the simulator's ideal-cycles baseline.
    const double n_l1 =
        static_cast<double>(t.instructions) / reads;
    const double m_l1 =
        static_cast<double>(t.l1ReadMisses) / reads;

    // Layer k is fed by the global miss ratio of the layer above:
    // L1 feeds the first downstream level, each pivot feeds the
    // next, and the profiled member feeds main memory.
    std::vector<model::MultiLevelModel::Layer> layers;
    layers.reserve(levelCycles_.size() + 1);
    layers.push_back({m_l1, levelCycles_[0]});
    for (std::size_t k = 0; k < t.pivotChain.size(); ++k)
        layers.push_back(
            {static_cast<double>(
                 t.pivotChain[k].counts.readMisses) /
                 reads,
             levelCycles_[k + 1]});
    layers.push_back(
        {static_cast<double>(
             t.configs[config].filtered.readMisses) /
             reads,
         nMMread_});
    return model::MultiLevelModel(n_l1, writeExtra_,
                                  std::move(layers));
}

double
EqTimingModel::relExec(const TraceProfile &t,
                       std::size_t config) const
{
    return modelFor(t, config).relativeExecTime(mixOf(t));
}

double
EqTimingModel::cpi(const TraceProfile &t, std::size_t config) const
{
    return modelFor(t, config).cpi(mixOf(t));
}

} // namespace onepass
} // namespace mlc
