#include "onepass/model_timing.hh"

#include <algorithm>
#include <utility>

#include "mem/bus.hh"
#include "mem/main_memory.hh"
#include "mem/timing.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace mlc {
namespace onepass {

EqTimingModel
EqTimingModel::forMachine(hier::HierarchyParams params)
{
    params.finalize();
    if (params.levels.empty())
        mlc_panic("EqTimingModel: no downstream cache level");
    if (params.levels.size() > 1)
        mlc_panic("EqTimingModel prices a two-level hierarchy; ",
                  params.levels.size(),
                  " downstream levels need the timing engine");

    const cache::CacheParams &l2 = params.levels[0];

    // n_L2: the L2 array read plus the fill transfer back to L1.
    // The CPU-L2 bus cycles at the L2 rate and the first beat
    // overlaps the array read, so only the residual beats add time.
    const std::uint32_t l1_fill = std::max(
        params.l1d.fillRequestBytes(),
        params.splitL1 ? params.l1i.fillRequestBytes() : 0u);
    const std::uint64_t fill_beats =
        divCeil(l1_fill, params.busWidthWords[0] * 4u);
    const double l2_read_ns =
        l2.readCycles * l2.cycleNs +
        static_cast<double>(fill_beats - 1) * l2.cycleNs;

    // n_MMread: the DRAM read service including backplane beats.
    // The Section 4 sweeps hold this constant while the L2 cycle
    // time varies, hence the independent backplane clock.
    const double backplane_ns = params.backplaneCycleNs > 0.0
                                    ? params.backplaneCycleNs
                                    : params.levels.back().cycleNs;
    const mem::Bus backplane(params.busWidthWords.back(),
                             nsToTicks(backplane_ns));
    const mem::MainMemory memory(params.memory);
    const double mm_read_ns = ticksToNs(
        memory.readService(backplane, l2.fillRequestBytes()));

    EqTimingModel m;
    m.nL2_ = l2_read_ns / params.cpuCycleNs;
    m.nMMread_ = mm_read_ns / params.cpuCycleNs;
    m.writeExtra_ = (params.l1d.writeCycles - 1) *
                    params.l1d.cycleNs / params.cpuCycleNs;
    return m;
}

model::RefMix
EqTimingModel::mixOf(const TraceProfile &t)
{
    if (t.instructions == 0)
        mlc_panic("EqTimingModel: profile has no instructions "
                  "(empty measurement window?)");
    model::RefMix mix;
    mix.readsPerInstruction =
        static_cast<double>(t.cpuReads()) /
        static_cast<double>(t.instructions);
    mix.storesPerInstruction =
        static_cast<double>(t.stores) /
        static_cast<double>(t.instructions);
    return mix;
}

model::MultiLevelModel
EqTimingModel::modelFor(const TraceProfile &t,
                        std::size_t config) const
{
    if (config >= t.configs.size())
        mlc_panic("EqTimingModel: config index ", config,
                  " out of range (", t.configs.size(), ")");
    const double reads = static_cast<double>(t.cpuReads());
    if (reads == 0.0)
        mlc_panic("EqTimingModel: profile has no reads");

    // Reads ride the pipeline at one cycle per *instruction*, so
    // per-read the base cost is instructions/reads; with the mix's
    // reads-per-instruction this contributes exactly 1 cycle per
    // instruction, matching the simulator's ideal-cycles baseline.
    const double n_l1 =
        static_cast<double>(t.instructions) / reads;
    const double m_l1 =
        static_cast<double>(t.l1ReadMisses) / reads;
    const double m_l2 =
        static_cast<double>(t.configs[config].filtered.readMisses) /
        reads;
    return model::MultiLevelModel(
        n_l1, writeExtra_, {{m_l1, nL2_}, {m_l2, nMMread_}});
}

double
EqTimingModel::relExec(const TraceProfile &t,
                       std::size_t config) const
{
    return modelFor(t, config).relativeExecTime(mixOf(t));
}

double
EqTimingModel::cpi(const TraceProfile &t, std::size_t config) const
{
    return modelFor(t, config).cpi(mixOf(t));
}

} // namespace onepass
} // namespace mlc
