#include "onepass/l1_filter.hh"

#include <utility>

namespace mlc {
namespace onepass {

namespace {

/**
 * Seed base for the replica L1s. Must stay equal to hierarchy.cc's
 * kCacheSeedBase: a Random-replacement L1 only replays identically
 * when its Rng stream matches the timing simulator's, seed and all.
 */
constexpr std::uint64_t kHierCacheSeedBase = 0x1234abcdULL;

hier::HierarchyParams
finalized(hier::HierarchyParams p)
{
    p.finalize();
    return p;
}

} // namespace

L1Filter::L1Filter(hier::HierarchyParams params)
    : params_(finalized(std::move(params)))
{
    if (params_.splitL1)
        l1i_ = std::make_unique<cache::Cache>(params_.l1i,
                                              kHierCacheSeedBase);
    l1d_ = std::make_unique<cache::Cache>(params_.l1d,
                                          kHierCacheSeedBase + 1);
}

void
L1Filter::resetCounts()
{
    instructions_ = 0;
    ifetches_ = 0;
    loads_ = 0;
    stores_ = 0;
    if (l1i_)
        l1i_->resetCounts();
    l1d_->resetCounts();
}

std::uint64_t
L1Filter::l1ReadRequests() const
{
    return l1d_->counts().readAccesses() +
           (l1i_ ? l1i_->counts().readAccesses() : 0);
}

std::uint64_t
L1Filter::l1ReadMisses() const
{
    return l1d_->counts().readMisses() +
           (l1i_ ? l1i_->counts().readMisses() : 0);
}

} // namespace onepass
} // namespace mlc
