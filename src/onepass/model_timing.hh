/**
 * @file
 * Analytical execution time from one-pass miss ratios.
 *
 * EqTimingModel derives the per-layer read costs of Equation 1
 * (n_L2, n_MMread, w_L1) from a HierarchyParams the way the paper's
 * Section 2 machine description implies — L2 array read plus the
 * residual fill-transfer beats for n_L2, the DRAM read service
 * including backplane beats for n_MMread — and combines them with a
 * TraceProfile's *measured* mix and *exact* miss counts through
 * model::MultiLevelModel.
 *
 * Scope: this is the modelled half of the one-pass engine. The miss
 * ratios feeding it are bit-exact versus the timing simulator; the
 * cycle translation is analytical and deliberately ignores
 * write-buffer stalls, bus/memory contention and cycle
 * quantization, which is precisely the approximation Equation 1
 * makes in the paper.
 */

#ifndef MLC_ONEPASS_MODEL_TIMING_HH
#define MLC_ONEPASS_MODEL_TIMING_HH

#include <cstddef>

#include "hier/hierarchy_config.hh"
#include "model/exec_time.hh"
#include "onepass/engine.hh"

namespace mlc {
namespace onepass {

/** Equation-1 layer costs of one machine configuration. */
class EqTimingModel
{
  public:
    /**
     * Derive the costs from @p params (finalized internally).
     * Panics on hierarchies deeper than two cache levels: Equation
     * 1 as instantiated here prices exactly one level between the
     * L1 and main memory.
     */
    static EqTimingModel forMachine(hier::HierarchyParams params);

    /** @{ @name Layer costs in CPU cycles */
    double nL2() const { return nL2_; }
    double nMMread() const { return nMMread_; }
    /** Extra cycles per store beyond the 1-cycle pipeline slot. */
    double writeExtra() const { return writeExtra_; }
    /** @} */

    /**
     * Execution time of @p t on this machine relative to an
     * all-hits machine, using the exact miss counts of family
     * member @p config.
     */
    double relExec(const TraceProfile &t, std::size_t config) const;

    /** Cycles per instruction, same inputs. */
    double cpi(const TraceProfile &t, std::size_t config) const;

  private:
    model::MultiLevelModel modelFor(const TraceProfile &t,
                                    std::size_t config) const;
    static model::RefMix mixOf(const TraceProfile &t);

    double nL2_ = 0.0;
    double nMMread_ = 0.0;
    double writeExtra_ = 0.0;
};

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_MODEL_TIMING_HH
