/**
 * @file
 * Analytical execution time from one-pass miss ratios.
 *
 * EqTimingModel derives the per-layer read costs of Equation 1
 * (n_L2, n_L3, ..., n_MMread, w_L1) from a HierarchyParams the way
 * the paper's Section 2 machine description implies — each level's
 * array read plus the residual fill-transfer beats from the level
 * above, the DRAM read service including backplane beats for
 * n_MMread — and combines them with a TraceProfile's *measured*
 * mix, *exact* family miss counts, and (for three-level cascade
 * profiles) the pivot chain's exact intermediate miss counts
 * through model::MultiLevelModel.
 *
 * Scope: this is the modelled half of the one-pass engine. The miss
 * ratios feeding it are bit-exact versus the timing simulator; the
 * cycle translation is analytical and deliberately ignores
 * write-buffer stalls, bus/memory contention and cycle
 * quantization, which is precisely the approximation Equation 1
 * makes in the paper.
 */

#ifndef MLC_ONEPASS_MODEL_TIMING_HH
#define MLC_ONEPASS_MODEL_TIMING_HH

#include <cstddef>
#include <vector>

#include "hier/hierarchy_config.hh"
#include "model/exec_time.hh"
#include "onepass/engine.hh"

namespace mlc {
namespace onepass {

/** Equation-1 layer costs of one machine configuration. */
class EqTimingModel
{
  public:
    /**
     * Derive the costs from @p params (finalized internally), for
     * any hierarchy depth: one layer cost per downstream cache
     * level plus the memory read. A profile priced by relExec/cpi
     * must carry levels-1 pivot links (TraceProfile::pivotChain) —
     * zero for the classic two-level case, one per exactly-replayed
     * intermediate level for cascade profiles.
     */
    static EqTimingModel forMachine(hier::HierarchyParams params);

    /** @{ @name Layer costs in CPU cycles */
    /** Read cost of the first downstream level (Equation 1's
     *  n_L2). */
    double nL2() const { return levelCycles_[0]; }
    /** Read cost of downstream cache level @p k (0 = the L2). */
    double levelCycles(std::size_t k) const
    {
        return levelCycles_[k];
    }
    /** Downstream cache levels the machine has. */
    std::size_t depth() const { return levelCycles_.size(); }
    double nMMread() const { return nMMread_; }
    /** Extra cycles per store beyond the 1-cycle pipeline slot. */
    double writeExtra() const { return writeExtra_; }
    /** @} */

    /**
     * Execution time of @p t on this machine relative to an
     * all-hits machine, using the exact miss counts of family
     * member @p config.
     */
    double relExec(const TraceProfile &t, std::size_t config) const;

    /** Cycles per instruction, same inputs. */
    double cpi(const TraceProfile &t, std::size_t config) const;

  private:
    model::MultiLevelModel modelFor(const TraceProfile &t,
                                    std::size_t config) const;
    static model::RefMix mixOf(const TraceProfile &t);

    /** Per-downstream-level read costs, outermost (L2) first. */
    std::vector<double> levelCycles_;
    double nMMread_ = 0.0;
    double writeExtra_ = 0.0;
};

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_MODEL_TIMING_HH
