/**
 * @file
 * One-pass fill of the Section 4 design-space grid.
 *
 * The timing engine prices a (sizes x cycles) grid with
 * sizes*cycles full hierarchy simulations per trace. buildGrid()
 * replaces that with one profiling pass per trace (all sizes at
 * once — the cycle axis changes timing only, so it needs no extra
 * cache state) followed by a closed-form evaluation of every cell
 * from the exact miss counts. Grid values are analytical
 * (EqTimingModel), not simulated; miss ratios underneath are exact.
 */

#ifndef MLC_ONEPASS_GRID_HH
#define MLC_ONEPASS_GRID_HH

#include <cstdint>
#include <vector>

#include "expt/design_space.hh"
#include "expt/workload_suite.hh"
#include "hier/hierarchy_config.hh"
#include "onepass/engine.hh"

namespace mlc {
namespace onepass {

/**
 * Profile the L2 family of @p sizes once over @p store, then fill
 * every (size, cycle) cell with the suite-mean relative execution
 * time of base.withL2(size, cycle) under EqTimingModel. The result
 * is bit-identical for any @p jobs and any @p shards: jobs
 * parallelizes across (trace x block-size group) tasks, shards
 * set-partitions the forest sweep within each task
 * (ProfileOptions::shards).
 */
expt::DesignSpaceGrid
buildGrid(const hier::HierarchyParams &base,
          const std::vector<std::uint64_t> &sizes,
          const std::vector<std::uint32_t> &cycles,
          const expt::TraceStore &store, std::size_t jobs = 1,
          std::size_t shards = 1);

/**
 * The same grid from profiles already computed (parallel to
 * @p store's traces and to the FamilySpec::l2Grid of @p sizes),
 * serial and deterministic. Exposed so callers that need the
 * profiles for other outputs too (solo curves, miss tables) pay
 * for profiling once.
 */
expt::DesignSpaceGrid
gridFromProfiles(const hier::HierarchyParams &base,
                 const std::vector<std::uint64_t> &sizes,
                 const std::vector<std::uint32_t> &cycles,
                 const std::vector<TraceProfile> &profiles);

} // namespace onepass
} // namespace mlc

#endif // MLC_ONEPASS_GRID_HH
