#include "onepass/sharded.hh"

#include <algorithm>
#include <limits>

#include "onepass/l1_filter.hh"
#include "trace/stack_distance.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace onepass {

namespace {

constexpr std::size_t kNoBoundary =
    std::numeric_limits<std::size_t>::max();

/** Set-ownership geometry of one family member: member m is split
 *  min(shards, sets_m) ways, shard r owning sets {r, r+S_m, ...}
 *  with shard-local row index set / S_m. */
struct MemberGeom
{
    std::uint64_t setMask = 0;
    std::uint64_t shardCount = 1; //!< S_m = min(shards, sets)
    std::uint64_t localSets = 1;  //!< ceil(sets / S_m)
    std::uint32_t ways = 1;
    FixedDivisor bySm{1};
};

/** Configs sharing one block size, so the byte-address shift
 *  happens once per group per event (mirrors GhostTagForest). */
struct ShardGroup
{
    unsigned blockShift;
    std::vector<std::size_t> members;
};

std::vector<ShardGroup>
shardGroups(const std::vector<GhostCacheSpec> &configs)
{
    std::vector<ShardGroup> groups;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const unsigned shift = exactLog2(configs[i].blockBytes);
        ShardGroup *g = nullptr;
        for (ShardGroup &cand : groups)
            if (cand.blockShift == shift)
                g = &cand;
        if (!g) {
            groups.push_back({shift, {}});
            g = &groups.back();
        }
        g->members.push_back(i);
    }
    return groups;
}

void
addCounts(GhostCounts &into, const GhostCounts &from)
{
    into.reads += from.reads;
    into.readMisses += from.readMisses;
    into.extraAccesses += from.extraAccesses;
    into.extraMisses += from.extraMisses;
}

std::vector<MemberGeom>
memberGeoms(const std::vector<GhostCacheSpec> &configs,
            std::size_t shards)
{
    std::vector<MemberGeom> geoms(configs.size());
    for (std::size_t m = 0; m < configs.size(); ++m) {
        const GhostCacheSpec &spec = configs[m];
        const std::uint64_t sets =
            spec.sizeBytes /
            (static_cast<std::uint64_t>(spec.assoc) *
             spec.blockBytes);
        MemberGeom &g = geoms[m];
        g.setMask = sets - 1;
        g.shardCount = std::min<std::uint64_t>(shards, sets);
        g.localSets = divCeil(sets, g.shardCount);
        g.ways = spec.assoc;
        g.bySm = FixedDivisor(g.shardCount);
    }
    return geoms;
}

std::vector<GhostCounts>
mergeShardCounts(const std::vector<std::vector<GhostCounts>> &per,
                 std::size_t n)
{
    // Fixed (member-major, shard-minor) order: the shards partition
    // every scalar count, so the integer sums are bit-identical to
    // the scalar forest for any shard count.
    std::vector<GhostCounts> out(n);
    for (std::size_t m = 0; m < n; ++m)
        for (const std::vector<GhostCounts> &shard : per)
            addCounts(out[m], shard[m]);
    return out;
}

} // namespace

std::vector<GhostCounts>
sweepEventLog(const FilteredEventLog &log,
              const std::vector<GhostCacheSpec> &configs,
              const GhostPolicies &policies, std::size_t shards)
{
    const std::size_t n = configs.size();
    shards = std::max<std::size_t>(1, shards);
    const std::vector<MemberGeom> geoms =
        memberGeoms(configs, shards);
    const std::vector<ShardGroup> groups = shardGroups(configs);
    const bool write_allocates =
        policies.downstreamWriteMiss ==
        cache::DownstreamWriteMissPolicy::Allocate;

    std::vector<std::vector<GhostCounts>> results(shards);
    parallelFor(shards, shards, [&](std::size_t s) {
        std::vector<GhostCounts> &counts = results[s];
        std::vector<GhostTagArray> arrays;
        arrays.reserve(n);
        for (const MemberGeom &g : geoms)
            arrays.emplace_back(g.localSets, g.ways);
        counts.assign(n, GhostCounts{});

        for (std::size_t idx = 0; idx < log.events.size(); ++idx) {
            if (idx == log.warmEvents)
                counts.assign(n, GhostCounts{});
            const std::uint64_t word = log.events[idx];
            const std::uint64_t kind =
                word & FilteredEventLog::kKindMask;
            const Addr addr = word & ~FilteredEventLog::kKindMask;
            for (const ShardGroup &grp : groups) {
                const std::uint64_t block = addr >> grp.blockShift;
                for (std::size_t m : grp.members) {
                    const MemberGeom &g = geoms[m];
                    const std::uint64_t set = block & g.setMask;
                    const std::uint64_t q = g.bySm.div(set);
                    if (set - q * g.shardCount != s)
                        continue;
                    GhostCounts &c = counts[m];
                    switch (kind) {
                      case FilteredEventLog::ReadCounted: {
                        const bool hit =
                            arrays[m].touchOrInstallAt(q, block);
                        ++c.reads;
                        if (!hit)
                            ++c.readMisses;
                        break;
                      }
                      case FilteredEventLog::ReadUncounted: {
                        const bool hit =
                            arrays[m].touchOrInstallAt(q, block);
                        ++c.extraAccesses;
                        if (!hit)
                            ++c.extraMisses;
                        break;
                      }
                      default: // Write
                        if (write_allocates)
                            arrays[m].touchOrInstallAt(q, block);
                        else
                            arrays[m].touchOnlyAt(q, block);
                        break;
                    }
                }
            }
        }

        // The boundary may lie past the last event (short streams).
        if (log.warmEvents != kNoBoundary &&
            log.warmEvents >= log.events.size())
            counts.assign(n, GhostCounts{});
    });
    return mergeShardCounts(results, n);
}

std::vector<GhostCounts>
sweepSoloStream(trace::RefSpan refs, std::uint64_t warmup_refs,
                const std::vector<GhostCacheSpec> &configs,
                const GhostPolicies &policies, std::size_t shards)
{
    const std::size_t n = configs.size();
    shards = std::max<std::size_t>(1, shards);
    const std::vector<MemberGeom> geoms =
        memberGeoms(configs, shards);
    const std::vector<ShardGroup> groups = shardGroups(configs);
    const bool store_allocates =
        policies.alloc == cache::AllocPolicy::WriteAllocate;

    std::vector<std::vector<GhostCounts>> results(shards);
    parallelFor(shards, shards, [&](std::size_t s) {
        std::vector<GhostCounts> &counts = results[s];
        std::vector<GhostTagArray> solo_arrays;
        solo_arrays.reserve(n);
        for (const MemberGeom &g : geoms)
            solo_arrays.emplace_back(g.localSets, g.ways);
        counts.assign(n, GhostCounts{});
        for (std::size_t i = 0; i < refs.size; ++i) {
            if (i == warmup_refs)
                counts.assign(n, GhostCounts{});
            const trace::MemRef &ref = refs[i];
            for (const ShardGroup &grp : groups) {
                const std::uint64_t block =
                    ref.addr >> grp.blockShift;
                for (std::size_t m : grp.members) {
                    const MemberGeom &g = geoms[m];
                    const std::uint64_t set = block & g.setMask;
                    const std::uint64_t q = g.bySm.div(set);
                    if (set - q * g.shardCount != s)
                        continue;
                    GhostCounts &c = counts[m];
                    if (ref.isRead()) {
                        const bool hit =
                            solo_arrays[m].touchOrInstallAt(q,
                                                            block);
                        ++c.reads;
                        if (!hit)
                            ++c.readMisses;
                    } else {
                        // Mirrors GhostTagForest::soloAccess: a
                        // store miss allocates only under
                        // write-allocate.
                        const bool hit =
                            store_allocates
                                ? solo_arrays[m].touchOrInstallAt(
                                      q, block)
                                : solo_arrays[m].touchOnlyAt(q,
                                                             block);
                        ++c.extraAccesses;
                        if (!hit)
                            ++c.extraMisses;
                    }
                }
            }
        }
    });
    return mergeShardCounts(results, n);
}

TraceProfile
profileTraceSharded(const hier::HierarchyParams &base,
                    const FamilySpec &family, trace::RefSpan refs,
                    std::uint64_t warmup_refs,
                    const ProfileOptions &opts)
{
    if (family.configs.empty())
        mlc_panic("profileTrace: empty cache family");
    const std::size_t shards = std::max<std::size_t>(1, opts.shards);

    L1Filter filter(base);
    const hier::HierarchyParams &params = filter.params();
    if (params.levels.empty())
        mlc_panic("profileTrace: the base machine has no downstream "
                  "level for the family to stand in for");

    const std::uint32_t l1_block = std::max(
        params.l1d.geometry.blockBytes,
        params.splitL1 ? params.l1i.geometry.blockBytes : 0u);
    for (const GhostCacheSpec &spec : family.configs) {
        if (spec.blockBytes < l1_block)
            mlc_panic("profileTrace: family member ",
                      spec.toString(),
                      " has a smaller block than the ", l1_block,
                      "B first-level block, which the hierarchy "
                      "disallows");
        if (spec.blockBytes < 4)
            mlc_panic("sharded profile: family member ",
                      spec.toString(),
                      " has a block under 4 bytes; the event log "
                      "packs the event kind into the low two "
                      "address bits");
    }

    const GhostPolicies policies = GhostPolicies::fromLevel(
        params.levels[0],
        [&] {
            std::uint32_t m = 1;
            for (const GhostCacheSpec &spec : family.configs)
                m = std::max(m, spec.assoc);
            return m;
        }());

    const std::size_t n = family.configs.size();

    // FA-bound analyzers span the whole stream (see profileTrace).
    struct FaState
    {
        std::uint32_t blockBytes;
        trace::StackDistanceAnalyzer analyzer;
    };
    std::vector<FaState> fa;
    std::vector<std::size_t> fa_of_config(n, 0);
    if (opts.faBound) {
        for (std::size_t m = 0; m < n; ++m) {
            const std::uint32_t bb = family.configs[m].blockBytes;
            std::size_t g = fa.size();
            for (std::size_t k = 0; k < fa.size(); ++k)
                if (fa[k].blockBytes == bb)
                    g = k;
            if (g == fa.size())
                fa.push_back({bb, trace::StackDistanceAnalyzer(bb)});
            fa_of_config[m] = g;
        }
    }

    // --- Phase 1: one serial L1 replay, recording the departing
    // event stream instead of applying it.
    FilteredEventLog log;
    log.warmEvents = kNoBoundary;
    log.events.reserve(refs.size / 8); // miss streams are sparse
    for (std::size_t i = 0; i < refs.size; ++i) {
        if (i == warmup_refs) {
            filter.resetCounts();
            log.warmEvents = log.events.size();
        }
        filter.step(refs[i], log);
        if (opts.faBound)
            for (FaState &f : fa)
                f.analyzer.access(refs[i].addr);
    }

    // --- Phase 2: every shard sweeps the log (and, for solo, the
    // raw stream), touching only the sets it owns. State is
    // disjoint by construction; no locks, no atomics.
    const std::vector<GhostCounts> filtered =
        sweepEventLog(log, family.configs, policies, shards);
    const std::vector<GhostCounts> solo =
        opts.solo ? sweepSoloStream(refs, warmup_refs,
                                    family.configs, policies, shards)
                  : std::vector<GhostCounts>();

    TraceProfile out;
    out.instructions = filter.instructions();
    out.ifetches = filter.ifetches();
    out.loads = filter.loads();
    out.stores = filter.stores();
    out.l1ReadRequests = filter.l1ReadRequests();
    out.l1ReadMisses = filter.l1ReadMisses();
    out.configs.resize(n);
    for (std::size_t m = 0; m < n; ++m) {
        ConfigProfile &cp = out.configs[m];
        cp.spec = family.configs[m];
        cp.filtered = filtered[m];
        if (opts.solo)
            cp.solo = solo[m];
        if (opts.faBound) {
            const trace::StackDistanceAnalyzer &a =
                fa[fa_of_config[m]].analyzer;
            cp.faMissRatio = a.missRatio(cp.spec.sizeBytes /
                                         cp.spec.blockBytes);
            cp.faCompulsory = a.infiniteCount();
        }
    }
    return out;
}

} // namespace onepass
} // namespace mlc
