#include "mem/write_buffer.hh"

#include <algorithm>
#include <cstring>

#include "util/bits.hh"

namespace mlc {
namespace mem {

WriteBuffer::WriteBuffer(std::size_t depth) : depth_(depth)
{
    if (depth == 0)
        mlc_panic("write buffer depth must be non-zero");
    // queueWrite() drains at least one entry before inserting into
    // a full buffer, so occupancy never exceeds depth_; a
    // power-of-two ring of at least that size can never overflow.
    const std::size_t cap = std::size_t{1} << ceilLog2(depth);
    ring_.resize(cap);
    mask_ = cap - 1;
}

void
WriteBuffer::expire(Tick now)
{
    while (size_ != 0 && front().done <= now)
        popFront();
}

Tick
WriteBuffer::resourceFreeAt() const
{
    Tick free_at = readFreeAt_;
    if (size_ != 0)
        free_at = std::max(free_at, at(size_ - 1).occupiedUntil);
    else
        free_at = std::max(free_at, lastEntryOccupied_);
    return free_at;
}

namespace {

bool
overlaps(Addr a, std::uint64_t alen, Addr b, std::uint64_t blen)
{
    return a < b + blen && b < a + alen;
}

} // namespace

Tick
WriteBuffer::queueWrite(Tick now, Addr base, std::uint64_t bytes,
                        Op op)
{
    expire(now);
    ++writesQueued_;

    // Coalesce with an unstarted entry for the same range: the new
    // data simply replaces the old in place.
    for (std::size_t i = 0; i < size_; ++i) {
        const Entry &entry = at(i);
        if (entry.base == base && entry.bytes == bytes &&
            entry.start > now) {
            ++writesCoalesced_;
            return now;
        }
    }

    Tick proceed = now;
    if (size_ >= depth_) {
        // Full: the requester stalls until the oldest entry drains.
        proceed = front().done;
        ++fullStalls_;
        fullStallTicks_ += proceed - now;
        expire(proceed);
    }

    Entry entry;
    entry.base = base;
    entry.bytes = bytes;
    entry.start = std::max(proceed, resourceFreeAt());
    entry.done = entry.start + op.service;
    entry.occupiedUntil = entry.start + op.occupancy;
    lastEntryOccupied_ = entry.occupiedUntil;
    pushBack(entry);
    return proceed;
}

BusyResource::Grant
WriteBuffer::read(Tick now, Addr base, std::uint64_t bytes, Op op)
{
    expire(now);
    ++reads_;

    // A buffered write overlapping the read holds data newer than
    // the downstream copy; it must drain before the read proceeds.
    std::ptrdiff_t match = -1;
    for (std::size_t i = 0; i < size_; ++i) {
        if (overlaps(at(i).base, at(i).bytes, base, bytes))
            match = static_cast<std::ptrdiff_t>(i);
    }

    Tick earliest = std::max(now, readFreeAt_);
    if (match >= 0) {
        ++readMatches_;
        const Entry &m = at(static_cast<std::size_t>(match));
        earliest = std::max(earliest, m.occupiedUntil);
    } else {
        // Wait only for an operation already in progress.
        for (std::size_t i = 0; i < size_; ++i) {
            const Entry &entry = at(i);
            if (entry.start <= now && entry.occupiedUntil > now)
                earliest = std::max(earliest, entry.occupiedUntil);
        }
    }

    BusyResource::Grant grant;
    grant.start = earliest;
    grant.done = earliest + op.service;
    const Tick read_occupied = earliest + op.occupancy;
    readFreeAt_ = read_occupied;

    // Push unstarted entries (behind any forced match) back behind
    // the read; they drain in order afterwards.
    Tick chain = read_occupied;
    for (std::size_t i = 0; i < size_; ++i) {
        Entry &entry = at(i);
        if (static_cast<std::ptrdiff_t>(i) <= match)
            continue;
        if (entry.start <= now)
            continue;
        const Tick service = entry.done - entry.start;
        const Tick occupancy = entry.occupiedUntil - entry.start;
        entry.start = chain;
        entry.done = entry.start + service;
        entry.occupiedUntil = entry.start + occupancy;
        chain = entry.occupiedUntil;
        lastEntryOccupied_ = entry.occupiedUntil;
    }
    return grant;
}

std::size_t
WriteBuffer::pendingAt(Tick now) const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < size_; ++i)
        if (at(i).done > now)
            ++n;
    return n;
}

Tick
WriteBuffer::quiesceAt() const
{
    return resourceFreeAt();
}

void
WriteBuffer::reset()
{
    head_ = 0;
    size_ = 0;
    readFreeAt_ = 0;
    lastEntryOccupied_ = 0;
    writesQueued_ = 0;
    writesCoalesced_ = 0;
    fullStalls_ = 0;
    fullStallTicks_ = 0;
    readMatches_ = 0;
    reads_ = 0;
}

void
WriteBuffer::captureState(SnapshotArena &arena,
                          WriteBufferSnapshot &snap) const
{
    snap.ringSize = ring_.size();
    snap.head = head_;
    snap.size = size_;
    snap.readFreeAt = readFreeAt_;
    snap.lastEntryOccupied = lastEntryOccupied_;
    snap.writesQueued = writesQueued_;
    snap.writesCoalesced = writesCoalesced_;
    snap.fullStalls = fullStalls_;
    snap.fullStallTicks = fullStallTicks_;
    snap.readMatches = readMatches_;
    snap.reads = reads_;
    const std::size_t bytes = ring_.size() * sizeof(Entry);
    snap.ringOff = arena.alloc(bytes);
    std::memcpy(arena.at(snap.ringOff), ring_.data(), bytes);
}

void
WriteBuffer::restoreState(const SnapshotArena &arena,
                          const WriteBufferSnapshot &snap)
{
    if (snap.ringSize != ring_.size())
        mlc_panic("WriteBuffer::restoreState ring capacity "
                  "mismatch: snapshot ", snap.ringSize,
                  ", buffer ", ring_.size());
    head_ = snap.head;
    size_ = snap.size;
    readFreeAt_ = snap.readFreeAt;
    lastEntryOccupied_ = snap.lastEntryOccupied;
    writesQueued_ = snap.writesQueued;
    writesCoalesced_ = snap.writesCoalesced;
    fullStalls_ = snap.fullStalls;
    fullStallTicks_ = snap.fullStallTicks;
    readMatches_ = snap.readMatches;
    reads_ = snap.reads;
    std::memcpy(ring_.data(), arena.at(snap.ringOff),
                ring_.size() * sizeof(Entry));
}

} // namespace mem
} // namespace mlc
