/**
 * @file
 * Inter-level bus model.
 *
 * The paper's buses are W words wide and cycle at the downstream
 * device's rate; moving B bytes costs ceil(B / 4W) bus cycles. The
 * Bus class computes those transfer times; occupancy is accounted
 * by the busy-until ledgers of the devices at either end.
 */

#ifndef MLC_MEM_BUS_HH
#define MLC_MEM_BUS_HH

#include <cstdint>

#include "mem/timing.hh"
#include "util/bits.hh"

namespace mlc {
namespace mem {

/** A W-word-wide bus cycling with period cycleTicks. */
class Bus
{
  public:
    /**
     * @param width_words datapath width in 4-byte words.
     * @param cycle bus cycle time in ticks.
     */
    Bus(std::uint32_t width_words, Tick cycle)
        : widthBytes_(width_words * 4), cycle_(cycle),
          widthShift_(isPowerOfTwo(widthBytes_)
                          ? floorLog2(widthBytes_)
                          : 0)
    {
        if (width_words == 0)
            mlc_panic("bus width must be non-zero");
        if (cycle == 0)
            mlc_panic("bus cycle time must be non-zero");
    }

    /** Bus cycles needed to move @p bytes. Transfer times sit on
     *  the miss path of every level, so the (universal) power-of-
     *  two width turns the division into a shift. */
    std::uint64_t
    beatsFor(std::uint64_t bytes) const
    {
        if (widthShift_ != 0)
            return (bytes + widthBytes_ - 1) >> widthShift_;
        return divCeil(bytes, widthBytes_);
    }

    /** Time to move @p bytes (full beats). */
    Tick
    transferTime(std::uint64_t bytes) const
    {
        return static_cast<Tick>(beatsFor(bytes)) * cycle_;
    }

    /** One bus cycle (e.g. an address beat). */
    Tick cycleTime() const { return cycle_; }

    std::uint64_t widthBytes() const { return widthBytes_; }

  private:
    std::uint64_t widthBytes_;
    Tick cycle_;
    unsigned widthShift_; //!< log2(widthBytes_), 0 if not pow2
};

} // namespace mem
} // namespace mlc

#endif // MLC_MEM_BUS_HH
