/**
 * @file
 * Timing primitives for the blocking-read hierarchy simulator.
 *
 * Time is kept in integer picoseconds (Tick) so that CPU cycles,
 * cache cycles and DRAM parameters compose without rounding drift;
 * the paper's 10 ns CPU cycle is 10'000 ticks.
 *
 * The simulator is trace-ordered rather than event-driven: the CPU
 * blocks on read misses, so the only concurrency is write-buffer
 * drain, which is modelled with busy-until ledgers (BusyResource)
 * instead of an event queue. This keeps the inner loop to a few
 * arithmetic operations per reference.
 */

#ifndef MLC_MEM_TIMING_HH
#define MLC_MEM_TIMING_HH

#include <cstdint>

#include "util/logging.hh"

namespace mlc {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Ticks per nanosecond. */
constexpr Tick kTicksPerNs = 1000;

/** Convert nanoseconds (possibly fractional) to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(
        ns * static_cast<double>(kTicksPerNs) + 0.5);
}

/** Convert ticks to nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Whole cycles of length @p cycle covering duration @p t. */
constexpr Tick
cyclesCovering(Tick t, Tick cycle)
{
    return (t + cycle - 1) / cycle;
}

/**
 * A resource that serves one operation at a time, tracked with a
 * single busy-until register. Operations have a service time (when
 * their result is available) and an occupancy (how long the
 * resource stays unavailable — e.g. DRAM refresh/cycle time extends
 * occupancy beyond data delivery).
 */
class BusyResource
{
  public:
    /** Grant times for one operation. */
    struct Grant
    {
        Tick start;  //!< when the operation begins
        Tick done;   //!< when its result is available
    };

    /**
     * Schedule an operation no earlier than @p earliest.
     * @param service time from start to result.
     * @param occupancy time from start until the resource frees;
     *        must be >= service.
     */
    Grant
    access(Tick earliest, Tick service, Tick occupancy)
    {
        if (occupancy < service)
            mlc_panic("BusyResource occupancy ", occupancy,
                      " shorter than service ", service);
        const Tick start = earliest > freeAt_ ? earliest : freeAt_;
        freeAt_ = start + occupancy;
        return {start, start + service};
    }

    /** Shorthand for occupancy == service. */
    Grant
    access(Tick earliest, Tick service)
    {
        return access(earliest, service, service);
    }

    /** Earliest time a new operation could start. */
    Tick freeAt() const { return freeAt_; }

    void reset() { freeAt_ = 0; }

  private:
    Tick freeAt_ = 0;
};

} // namespace mlc

#endif // MLC_MEM_TIMING_HH
