/**
 * @file
 * Write buffer between adjacent levels of the hierarchy.
 *
 * The paper places 4-entry write buffers between each pair of
 * levels, each entry one upstream block wide; with write-back
 * caches "the writes are mostly hidden between the read requests".
 * This class models that: it owns the timeline of ONE downstream
 * resource and schedules two kinds of traffic on it:
 *
 *  - queueWrite(): a buffered block write (victim write-back or
 *    write-through store). The requester proceeds immediately
 *    unless all entries are occupied, in which case it stalls until
 *    the oldest entry drains.
 *  - read(): a demand read with priority — it waits only for an
 *    operation already in progress (and, if it matches a buffered
 *    block, for that entry to drain first, since the buffered data
 *    is newer than the downstream copy); unstarted buffered writes
 *    are pushed back behind the read.
 *
 * Because the CPU blocks on read misses, reads through a given
 * buffer are naturally serialized, which is what lets a busy-until
 * schedule (rather than an event queue) be exact.
 */

#ifndef MLC_MEM_WRITE_BUFFER_HH
#define MLC_MEM_WRITE_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/timing.hh"
#include "trace/mem_ref.hh"
#include "util/snapshot_arena.hh"

namespace mlc {
namespace mem {

/**
 * Checkpoint of a WriteBuffer: ring contents (memcpy'd into the
 * arena; Entry is POD), cursor state and statistics. The ring
 * capacity is the restore-compatibility fingerprint.
 */
struct WriteBufferSnapshot
{
    std::size_t ringSize = 0; //!< compat fingerprint
    std::size_t head = 0;
    std::size_t size = 0;
    Tick readFreeAt = 0;
    Tick lastEntryOccupied = 0;
    std::uint64_t writesQueued = 0;
    std::uint64_t writesCoalesced = 0;
    std::uint64_t fullStalls = 0;
    Tick fullStallTicks = 0;
    std::uint64_t readMatches = 0;
    std::uint64_t reads = 0;
    std::size_t ringOff = 0; //!< arena offset of the entry array
};

/** Write buffer plus downstream-resource scheduler. */
class WriteBuffer
{
  public:
    /** Service/occupancy pair for one downstream operation. */
    struct Op
    {
        Tick service;   //!< start to result available
        Tick occupancy; //!< start to resource free (>= service)
    };

    /** @param depth number of block entries (the paper uses 4). */
    explicit WriteBuffer(std::size_t depth);

    /**
     * Queue a block write.
     * @return the tick at which the requester may proceed: @p now,
     *         or later if the buffer was full.
     */
    Tick queueWrite(Tick now, Addr base, std::uint64_t bytes,
                    Op op);

    /**
     * Perform a demand read with priority over unstarted writes.
     * @return grant with the read's start and data-available times.
     */
    BusyResource::Grant read(Tick now, Addr base,
                             std::uint64_t bytes, Op op);

    /** Entries still draining at @p now. */
    std::size_t pendingAt(Tick now) const;

    /** Completion time of the last scheduled operation. */
    Tick quiesceAt() const;

    std::size_t depth() const { return depth_; }

    /** @{ @name Statistics */
    std::uint64_t writesQueued() const { return writesQueued_; }
    std::uint64_t writesCoalesced() const { return writesCoalesced_; }
    std::uint64_t fullStalls() const { return fullStalls_; }
    Tick fullStallTicks() const { return fullStallTicks_; }
    std::uint64_t readMatches() const { return readMatches_; }
    std::uint64_t reads() const { return reads_; }
    /** @} */

    void reset();

    /** Checkpoint the full buffer state into @p arena. */
    void captureState(SnapshotArena &arena,
                      WriteBufferSnapshot &snap) const;

    /** Restore a checkpoint; panics if ring capacity differs. */
    void restoreState(const SnapshotArena &arena,
                      const WriteBufferSnapshot &snap);

  private:
    struct Entry
    {
        Addr base;
        std::uint64_t bytes;
        Tick start;
        Tick done;          //!< write completes, entry frees
        Tick occupiedUntil; //!< downstream resource frees
    };

    /** Drop entries fully drained by @p now. */
    void expire(Tick now);

    /** Latest occupancy end over everything scheduled. */
    Tick resourceFreeAt() const;

    /** @{ @name Fixed ring of at most depth_ entries. The buffer
     *  is tiny (the paper uses 4 entries) and exercised on every
     *  miss, so it lives in a flat power-of-two array instead of a
     *  deque: no allocation after construction, index arithmetic
     *  is a mask, and the whole ring shares a cache line or two. */
    Entry &at(std::size_t i) { return ring_[(head_ + i) & mask_]; }
    const Entry &
    at(std::size_t i) const
    {
        return ring_[(head_ + i) & mask_];
    }
    Entry &front() { return ring_[head_]; }
    void
    popFront()
    {
        head_ = (head_ + 1) & mask_;
        --size_;
    }
    void
    pushBack(const Entry &e)
    {
        ring_[(head_ + size_) & mask_] = e;
        ++size_;
    }
    /** @} */

    std::size_t depth_;
    std::vector<Entry> ring_; //!< capacity: depth_ rounded to pow2
    std::size_t mask_ = 0;    //!< ring_.size() - 1
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    Tick readFreeAt_ = 0;       //!< occupancy end of the last read
    Tick lastEntryOccupied_ = 0;

    std::uint64_t writesQueued_ = 0;
    std::uint64_t writesCoalesced_ = 0;
    std::uint64_t fullStalls_ = 0;
    Tick fullStallTicks_ = 0;
    std::uint64_t readMatches_ = 0;
    std::uint64_t reads_ = 0;
};

} // namespace mem
} // namespace mlc

#endif // MLC_MEM_WRITE_BUFFER_HH
