/**
 * @file
 * Main-memory (DRAM) timing model.
 *
 * The paper decomposes a main-memory access into the memory
 * operation itself plus backplane bus beats, with a refresh/cycle
 * gap between successive operations:
 *
 *  - read: address available to 8 words available, 180 ns,
 *  - write: address+data available to complete, 100 ns,
 *  - at least 120 ns of refresh and cycle time between successive
 *    data operations,
 *  - the 4-word backplane adds 1 cycle to send the address and
 *    ceil(block / 4 words) cycles to move the data.
 *
 * The gap is modelled as extra occupancy after each operation: a
 * request arriving at an idle, rested memory sees the minimum
 * latency (270 ns for the base machine's 8-word L2 block with a
 * 30 ns backplane); a request arriving on the heels of another
 * waits out the remaining busy+gap time. The paper quotes
 * 270–370 ns for this window; a literal ">= 120 ns between
 * operations" reading gives 270–390 ns, a 20 ns difference at the
 * tail that EXPERIMENTS.md discusses.
 */

#ifndef MLC_MEM_MAIN_MEMORY_HH
#define MLC_MEM_MAIN_MEMORY_HH

#include <cstdint>

#include "mem/bus.hh"
#include "mem/timing.hh"

namespace mlc {
namespace mem {

/** User-visible DRAM timing parameters (paper Section 2). */
struct MainMemoryParams
{
    double readNs = 180.0;      //!< address to full block out
    double writeNs = 100.0;     //!< address+data to write complete
    double interOpGapNs = 120.0; //!< refresh/cycle gap between ops

    MainMemoryParams() = default;

    /** The paper's Figure 4-4 "slow memory": all times doubled. */
    static MainMemoryParams
    slow()
    {
        MainMemoryParams p;
        p.readNs = 360.0;
        p.writeNs = 200.0;
        p.interOpGapNs = 240.0;
        return p;
    }
};

/** DRAM with busy/refresh bookkeeping. */
class MainMemory
{
  public:
    explicit MainMemory(const MainMemoryParams &params);

    /**
     * Service time of a block read including backplane beats:
     * 1 address beat + readNs + data transfer beats.
     */
    Tick readService(const Bus &backplane,
                     std::uint64_t block_bytes) const;

    /**
     * Service time of a block write: 1 address beat + data beats +
     * writeNs (data must be at the memory before the op completes).
     */
    Tick writeService(const Bus &backplane,
                      std::uint64_t block_bytes) const;

    /** Occupancy corresponding to a service time (adds the gap). */
    Tick occupancyFor(Tick service) const;

    /** Schedule a read; returns {start, data-available}. */
    BusyResource::Grant read(Tick earliest, const Bus &backplane,
                             std::uint64_t block_bytes);

    /** Schedule a write; returns {start, complete}. */
    BusyResource::Grant write(Tick earliest, const Bus &backplane,
                              std::uint64_t block_bytes);

    /** Direct access to the busy ledger (the write buffer drives
     *  writes through it so reads and buffered writes interleave
     *  on one timeline). */
    BusyResource &resource() { return resource_; }

    const MainMemoryParams &params() const { return params_; }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

    void reset();

  private:
    MainMemoryParams params_;
    Tick readTicks_;
    Tick writeTicks_;
    Tick gapTicks_;
    BusyResource resource_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace mem
} // namespace mlc

#endif // MLC_MEM_MAIN_MEMORY_HH
