#include "mem/main_memory.hh"

namespace mlc {
namespace mem {

MainMemory::MainMemory(const MainMemoryParams &params)
    : params_(params),
      readTicks_(nsToTicks(params.readNs)),
      writeTicks_(nsToTicks(params.writeNs)),
      gapTicks_(nsToTicks(params.interOpGapNs))
{
    if (readTicks_ == 0 || writeTicks_ == 0)
        mlc_panic("main memory operation times must be non-zero");
}

Tick
MainMemory::readService(const Bus &backplane,
                        std::uint64_t block_bytes) const
{
    return backplane.cycleTime() + readTicks_ +
           backplane.transferTime(block_bytes);
}

Tick
MainMemory::writeService(const Bus &backplane,
                         std::uint64_t block_bytes) const
{
    return backplane.cycleTime() +
           backplane.transferTime(block_bytes) + writeTicks_;
}

Tick
MainMemory::occupancyFor(Tick service) const
{
    return service + gapTicks_;
}

BusyResource::Grant
MainMemory::read(Tick earliest, const Bus &backplane,
                 std::uint64_t block_bytes)
{
    ++reads_;
    const Tick service = readService(backplane, block_bytes);
    return resource_.access(earliest, service, occupancyFor(service));
}

BusyResource::Grant
MainMemory::write(Tick earliest, const Bus &backplane,
                  std::uint64_t block_bytes)
{
    ++writes_;
    const Tick service = writeService(backplane, block_bytes);
    return resource_.access(earliest, service, occupancyFor(service));
}

void
MainMemory::reset()
{
    resource_.reset();
    reads_ = 0;
    writes_ = 0;
}

} // namespace mem
} // namespace mlc
