#include "ckpt/codec.hh"

namespace mlc {
namespace ckpt {

namespace {

void
putVarintTo(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

void
flushLiteral(std::vector<std::uint8_t> &out,
             const std::uint8_t *data, std::size_t begin,
             std::size_t end)
{
    while (begin < end) {
        const std::size_t len = end - begin;
        putVarintTo(out, static_cast<std::uint64_t>(len) << 1);
        out.insert(out.end(), data + begin, data + end);
        begin = end;
    }
}

} // namespace

std::vector<std::uint8_t>
rleCompress(const std::uint8_t *data, std::size_t n)
{
    std::vector<std::uint8_t> out;
    out.reserve(n / 2 + 16);
    std::size_t lit_begin = 0;
    std::size_t i = 0;
    while (i < n) {
        std::size_t run = 1;
        while (i + run < n && data[i + run] == data[i])
            ++run;
        if (run >= 4) {
            flushLiteral(out, data, lit_begin, i);
            putVarintTo(out,
                        (static_cast<std::uint64_t>(run) << 1) | 1);
            out.push_back(data[i]);
            i += run;
            lit_begin = i;
        } else {
            i += run;
        }
    }
    flushLiteral(out, data, lit_begin, n);
    return out;
}

bool
rleDecompress(const std::uint8_t *data, std::size_t n,
              std::uint8_t *out, std::size_t raw_size)
{
    ByteReader in(data, n);
    std::size_t produced = 0;
    while (produced < raw_size) {
        const std::uint64_t token = in.getVarint();
        if (in.failed())
            return false;
        const std::uint64_t len = token >> 1;
        if (len == 0 || len > raw_size - produced)
            return false;
        if (token & 1) {
            const std::uint8_t byte = in.getU8();
            if (in.failed())
                return false;
            std::memset(out + produced, byte,
                        static_cast<std::size_t>(len));
        } else {
            if (!in.getBytes(out + produced,
                             static_cast<std::size_t>(len)))
                return false;
        }
        produced += static_cast<std::size_t>(len);
    }
    // Exact-fit contract: trailing bytes mean the stored size lied.
    return in.exhausted();
}

} // namespace ckpt
} // namespace mlc
