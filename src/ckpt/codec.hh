/**
 * @file
 * Byte-level codec for the live-point checkpoint format: bounds-
 * checked little-endian readers/writers, LEB128 varints, zigzag
 * deltas, a byte-run RLE compressor and FNV-1a checksums.
 *
 * Everything here is deliberately failure-soft: a checkpoint file
 * comes from disk and may be truncated, bit-flipped or written by
 * a future version, and the loader's contract is "fail loudly and
 * fall back to re-warming, never load garbage state". So ByteReader
 * never panics on malformed input — it latches an error flag the
 * caller must check, and every decoder returns false instead of
 * trusting a single byte past the buffer.
 */

#ifndef MLC_CKPT_CODEC_HH
#define MLC_CKPT_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace mlc {
namespace ckpt {

/** FNV-1a over @p n bytes — the integrity check on every header,
 *  index and window record. Not cryptographic; it only needs to
 *  catch truncation and bit rot. */
inline std::uint64_t
fnv64(const std::uint8_t *data, std::size_t n,
      std::uint64_t seed = 1469598103934665603ULL)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

inline std::uint64_t
fnv64(const std::vector<std::uint8_t> &bytes,
      std::uint64_t seed = 1469598103934665603ULL)
{
    return fnv64(bytes.data(), bytes.size(), seed);
}

/** Zigzag mapping so small signed deltas varint-encode short. */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^
                                     (~(v & 1) + 1));
}

/** Append-only byte sink the serializers write into. */
class ByteWriter
{
  public:
    void
    putU8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    putU32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(
                static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    putU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(
                static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** LEB128: 7 value bits per byte, high bit = continuation. */
    void
    putVarint(std::uint64_t v)
    {
        while (v >= 0x80) {
            bytes_.push_back(
                static_cast<std::uint8_t>(v & 0x7f) | 0x80);
            v >>= 7;
        }
        bytes_.push_back(static_cast<std::uint8_t>(v));
    }

    void
    putBytes(const std::uint8_t *data, std::size_t n)
    {
        bytes_.insert(bytes_.end(), data, data + n);
    }

    const std::vector<std::uint8_t> &bytes() const
    {
        return bytes_;
    }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }
    std::size_t size() const { return bytes_.size(); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Bounds-checked reader over a borrowed byte span. Any read past
 * the end latches failed() and returns zeros; callers check once
 * at the end of a decode instead of after every field.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t n)
        : data_(data), size_(n)
    {
    }

    std::uint8_t
    getU8()
    {
        if (pos_ + 1 > size_) {
            failed_ = true;
            return 0;
        }
        return data_[pos_++];
    }

    std::uint32_t
    getU32()
    {
        if (pos_ + 4 > size_) {
            failed_ = true;
            pos_ = size_;
            return 0;
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++])
                 << (8 * i);
        return v;
    }

    std::uint64_t
    getU64()
    {
        if (pos_ + 8 > size_) {
            failed_ = true;
            pos_ = size_;
            return 0;
        }
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++])
                 << (8 * i);
        return v;
    }

    std::uint64_t
    getVarint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (pos_ >= size_) {
                failed_ = true;
                return 0;
            }
            const std::uint8_t b = data_[pos_++];
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
        }
        failed_ = true; // > 10 continuation bytes: not a varint
        return 0;
    }

    bool
    getBytes(std::uint8_t *out, std::size_t n)
    {
        if (pos_ + n > size_) {
            failed_ = true;
            pos_ = size_;
            return false;
        }
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
        return true;
    }

    /** Borrow @p n bytes in place (nullptr + failed() past end). */
    const std::uint8_t *
    view(std::size_t n)
    {
        if (pos_ + n > size_) {
            failed_ = true;
            pos_ = size_;
            return nullptr;
        }
        const std::uint8_t *p = data_ + pos_;
        pos_ += n;
        return p;
    }

    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }
    bool failed() const { return failed_; }
    /** True when the whole span was consumed without error. */
    bool exhausted() const { return !failed_ && pos_ == size_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/**
 * Byte-run RLE: the snapshot-arena compressor.
 *
 * Token stream: varint t. Low bit 1 = a repeat run of (t >> 1)
 * copies of the single byte that follows; low bit 0 = a literal
 * run of (t >> 1) raw bytes that follow. Runs shorter than 4 stay
 * literal (a repeat token costs 2+ bytes). Warm tag arrays are
 * SoA u64 words whose high bytes repeat heavily (monotonic LRU
 * stamps, small tags, zero dirty masks), so this simple scheme
 * typically reclaims 40-70% without any external dependency.
 */
std::vector<std::uint8_t>
rleCompress(const std::uint8_t *data, std::size_t n);

/**
 * Inverse of rleCompress. @p raw_size must be the exact original
 * length (stored alongside the compressed block); any mismatch —
 * tokens running past the output, input ending early, trailing
 * garbage — returns false and the output must be discarded.
 */
bool rleDecompress(const std::uint8_t *data, std::size_t n,
                   std::uint8_t *out, std::size_t raw_size);

} // namespace ckpt
} // namespace mlc

#endif // MLC_CKPT_CODEC_HH
