/**
 * @file
 * Live-point window record: the serialized form of one sample
 * window's warm state — the recorded boundary ops that replay the
 * warmer's downstream traffic into each branch configuration, the
 * `hier::WarmSnapshot` metadata (geometry fingerprints, counters,
 * arena offsets), and the `SnapshotArena` bytes those offsets index
 * into, RLE-compressed.
 *
 * The record round-trips the exact triple that
 * `sample::runSweepCheckpointed` produces in memory per window, so
 * a sweep branched from a decoded record is bit-identical to one
 * branched from a freshly captured snapshot: the arena is restored
 * into offset 0 of a reset arena (the first alloc() of a reset
 * arena is always offset 0, so every stored offset stays valid),
 * and `restoreWarmState` then re-runs its usual shape checks.
 *
 * Decoders never panic on malformed bytes — they return false and
 * the caller falls back to re-warming. Panics are reserved for the
 * caller-side contract (e.g. restoring a verified record into the
 * wrong geometry), which indicates a keying bug, not bit rot.
 */

#ifndef MLC_CKPT_LIVEPOINT_HH
#define MLC_CKPT_LIVEPOINT_HH

#include <cstdint>
#include <vector>

#include "ckpt/codec.hh"
#include "hier/hierarchy.hh"
#include "util/snapshot_arena.hh"

namespace mlc {
namespace ckpt {

/**
 * Append one window's (ops, snapshot, arena) triple to @p w.
 *
 * Layout, in order:
 *  - boundary ops: varint count, then per op a flags byte
 *    (bit0 = write, bit1 = countRead), varint access bytes, and a
 *    zigzag-varint address delta against the previous op;
 *  - snapshot metadata: an explicit field walk of WarmSnapshot
 *    (never a struct memcpy — layout must survive compilers);
 *  - arena: varint raw byte count, varint compressed byte count,
 *    then the rleCompress()ed image of [0, bytesUsed()).
 */
void encodeWindow(ByteWriter &w,
                  const std::vector<hier::BoundaryOp> &ops,
                  const hier::WarmSnapshot &snap,
                  const SnapshotArena &arena);

/**
 * Decode one window record. On success the arena holds the restored
 * image at offset 0 with bytesUsed() equal to the captured size and
 * @p snap / @p ops are fully populated; returns false (with the
 * outputs unspecified) on any structural problem: truncated input,
 * bad varint, arena offsets pointing outside the restored image, or
 * RLE size mismatch. @p r is left positioned after the record only
 * on success.
 */
bool decodeWindow(ByteReader &r,
                  std::vector<hier::BoundaryOp> &ops,
                  hier::WarmSnapshot &snap,
                  SnapshotArena &arena);

} // namespace ckpt
} // namespace mlc

#endif // MLC_CKPT_LIVEPOINT_HH
