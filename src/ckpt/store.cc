#include "ckpt/store.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define MLC_CKPT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/logging.hh"

namespace fs = std::filesystem;

namespace mlc {
namespace ckpt {

namespace {

constexpr char kMagic[4] = {'M', 'L', 'P', 'T'};
/** magic + version + totalRefs + fingerprint + keyHash + keyBytes
 *  + windows + indexOffset + fileBytes, before the checksum. */
constexpr std::size_t kHeaderBody = 4 + 4 + 8 + 8 + 8 + 4 + 4 + 8 + 8;
constexpr std::size_t kHeaderBytes = kHeaderBody + 8;
/** Per-window index entry: offset + bytes + checksum. */
constexpr std::size_t kIndexEntry = 24;

void
putString(ByteWriter &w, const std::string &s)
{
    w.putVarint(s.size());
    w.putBytes(reinterpret_cast<const std::uint8_t *>(s.data()),
               s.size());
}

bool
getString(ByteReader &r, std::string &out)
{
    const std::uint64_t n = r.getVarint();
    if (r.failed() || n > r.remaining())
        return false;
    const std::uint8_t *p = r.view(static_cast<std::size_t>(n));
    if (p == nullptr && n != 0)
        return false;
    out.assign(reinterpret_cast<const char *>(p),
               static_cast<std::size_t>(n));
    return true;
}

std::vector<std::uint8_t>
encodeKeyBlock(const CheckpointKey &key)
{
    ByteWriter w;
    putString(w, key.traceId);
    putString(w, key.scheduleKey);
    putString(w, key.configHash);
    return w.take();
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
checkpointFileName(const CheckpointKey &key)
{
    const std::string blob = key.scheduleKey + "|" + key.configHash;
    return hex16(fnv64(reinterpret_cast<const std::uint8_t *>(
                           blob.data()),
                       blob.size())) +
           ".mlcp";
}

std::uint64_t
traceFingerprint(const trace::MemRef *refs, std::uint64_t n)
{
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    std::uint64_t h = 1469598103934665603ULL;
    const std::uint64_t scan = std::min<std::uint64_t>(n, 65536);
    for (std::uint64_t i = 0; i < scan; ++i) {
        const trace::MemRef &r = refs[i];
        h ^= static_cast<std::uint64_t>(r.addr);
        h *= kPrime;
        h ^= static_cast<std::uint64_t>(r.type) |
             (static_cast<std::uint64_t>(r.size) << 8) |
             (static_cast<std::uint64_t>(r.pid) << 16);
        h *= kPrime;
    }
    h ^= n;
    h *= kPrime;
    return h;
}

const char *
missReasonName(MissReason r)
{
    switch (r) {
      case MissReason::None: return "none";
      case MissReason::NoFarm: return "no-farm";
      case MissReason::NoFile: return "no-file";
      case MissReason::ScheduleMismatch: return "schedule-mismatch";
      case MissReason::ConfigMismatch: return "config-hash-mismatch";
      case MissReason::TraceMismatch: return "trace-mismatch";
      case MissReason::Corrupt: return "corrupt";
    }
    return "unknown";
}

// --- CheckpointWriter ---------------------------------------------

CheckpointWriter::CheckpointWriter(CheckpointKey key,
                                   std::uint64_t total_refs,
                                   std::uint64_t trace_fingerprint)
    : key_(std::move(key)), totalRefs_(total_refs),
      fingerprint_(trace_fingerprint)
{
}

void
CheckpointWriter::addWindow(const std::vector<hier::BoundaryOp> &ops,
                            const hier::WarmSnapshot &snap,
                            const SnapshotArena &arena)
{
    ByteWriter w;
    encodeWindow(w, ops, snap, arena);
    const std::vector<std::uint8_t> &rec = w.bytes();
    IndexEntry entry;
    entry.offset = records_.size();
    entry.bytes = rec.size();
    entry.checksum = fnv64(rec);
    index_.push_back(entry);
    records_.insert(records_.end(), rec.begin(), rec.end());
}

std::uint64_t
CheckpointWriter::finalize(const std::string &path, std::string *err)
{
    const std::vector<std::uint8_t> key_block = encodeKeyBlock(key_);
    const std::uint64_t records_at = kHeaderBytes + key_block.size();
    const std::uint64_t index_at = records_at + records_.size();
    const std::uint64_t file_bytes =
        index_at + index_.size() * kIndexEntry + 8;

    ByteWriter header;
    header.putBytes(reinterpret_cast<const std::uint8_t *>(kMagic),
                    4);
    header.putU32(kCheckpointVersion);
    header.putU64(totalRefs_);
    header.putU64(fingerprint_);
    header.putU64(fnv64(key_block));
    header.putU32(static_cast<std::uint32_t>(key_block.size()));
    header.putU32(static_cast<std::uint32_t>(index_.size()));
    header.putU64(index_at);
    header.putU64(file_bytes);
    header.putU64(fnv64(header.bytes()));

    ByteWriter index;
    for (const IndexEntry &e : index_) {
        index.putU64(records_at + e.offset);
        index.putU64(e.bytes);
        index.putU64(e.checksum);
    }
    index.putU64(fnv64(index.bytes()));

    // Write-once, temp-then-rename: a crashed or concurrent
    // builder never leaves a partial file at the final path.
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long long>(
#if MLC_CKPT_HAVE_MMAP
            ::getpid()
#else
            0
#endif
            ));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            if (err)
                *err = tmp + ": cannot open for writing";
            return 0;
        }
        const auto put = [&os](const std::vector<std::uint8_t> &b) {
            os.write(reinterpret_cast<const char *>(b.data()),
                     static_cast<std::streamsize>(b.size()));
        };
        put(header.bytes());
        put(key_block);
        put(records_);
        put(index.bytes());
        os.flush();
        if (!os) {
            if (err)
                *err = tmp + ": short write";
            std::error_code ec;
            fs::remove(tmp, ec);
            return 0;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        if (err)
            *err = path + ": rename failed: " + ec.message();
        fs::remove(tmp, ec);
        return 0;
    }
    return file_bytes;
}

// --- CheckpointReader ---------------------------------------------

CheckpointReader::~CheckpointReader()
{
#if MLC_CKPT_HAVE_MMAP
    if (mapBase_ != nullptr)
        ::munmap(mapBase_, mapBytes_);
#endif
}

bool
CheckpointReader::open(const std::string &path, std::string *err)
{
    const auto fail = [&](const std::string &why) {
        if (err)
            *err = path + ": " + why;
        return false;
    };

#if MLC_CKPT_HAVE_MMAP
    {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            return fail("cannot open");
        struct stat st{};
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            return fail("cannot stat");
        }
        const std::size_t bytes =
            static_cast<std::size_t>(st.st_size);
        if (bytes != 0) {
            void *base = ::mmap(nullptr, bytes, PROT_READ,
                                MAP_PRIVATE, fd, 0);
            ::close(fd);
            if (base != MAP_FAILED) {
                mapBase_ = base;
                mapBytes_ = bytes;
                data_ = static_cast<const std::uint8_t *>(base);
                bytes_ = bytes;
            }
        } else {
            ::close(fd);
        }
    }
#endif
    if (data_ == nullptr) {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return fail("cannot open");
        buffer_.assign(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
        data_ = buffer_.data();
        bytes_ = buffer_.size();
    }

    // --- header ---
    if (bytes_ < kHeaderBytes)
        return fail("truncated header (" +
                    std::to_string(bytes_) + " bytes)");
    ByteReader h(data_, kHeaderBytes);
    char magic[4];
    h.getBytes(reinterpret_cast<std::uint8_t *>(magic), 4);
    if (std::memcmp(magic, kMagic, 4) != 0)
        return fail("bad magic (not an MLPT checkpoint)");
    meta_.version = h.getU32();
    if (meta_.version != kCheckpointVersion)
        return fail("unsupported checkpoint version " +
                    std::to_string(meta_.version) + " (have " +
                    std::to_string(kCheckpointVersion) + ")");
    meta_.totalRefs = h.getU64();
    meta_.traceFingerprint = h.getU64();
    const std::uint64_t key_hash = h.getU64();
    const std::uint32_t key_bytes = h.getU32();
    meta_.windows = h.getU32();
    const std::uint64_t index_at = h.getU64();
    meta_.fileBytes = h.getU64();
    const std::uint64_t header_check = h.getU64();
    if (fnv64(data_, kHeaderBody) != header_check)
        return fail("header checksum mismatch");
    if (meta_.fileBytes != bytes_)
        return fail("size mismatch (declares " +
                    std::to_string(meta_.fileBytes) + ", actual " +
                    std::to_string(bytes_) + ")");

    // --- key block ---
    if (kHeaderBytes + static_cast<std::uint64_t>(key_bytes) >
        bytes_)
        return fail("key block past end of file");
    if (fnv64(data_ + kHeaderBytes, key_bytes) != key_hash)
        return fail("key block checksum mismatch");
    ByteReader k(data_ + kHeaderBytes, key_bytes);
    if (!getString(k, meta_.key.traceId) ||
        !getString(k, meta_.key.scheduleKey) ||
        !getString(k, meta_.key.configHash) || !k.exhausted())
        return fail("malformed key block");

    // --- index ---
    const std::uint64_t records_at = kHeaderBytes + key_bytes;
    const std::uint64_t index_bytes =
        static_cast<std::uint64_t>(meta_.windows) * kIndexEntry;
    if (index_at < records_at || index_at > bytes_ ||
        index_bytes + 8 != bytes_ - index_at)
        return fail("index location inconsistent with window "
                    "count");
    {
        ByteReader tail(data_ + index_at + index_bytes, 8);
        if (fnv64(data_ + index_at, index_bytes) != tail.getU64())
            return fail("index checksum mismatch");
    }
    ByteReader ix(data_ + index_at,
                  static_cast<std::size_t>(index_bytes));
    index_.resize(meta_.windows);
    for (IndexEntry &e : index_) {
        e.offset = ix.getU64();
        e.bytes = ix.getU64();
        const std::uint64_t want = ix.getU64();
        if (e.offset < records_at || e.bytes > index_at ||
            e.offset > index_at - e.bytes)
            return fail("window record outside record region");
        if (fnv64(data_ + e.offset,
                  static_cast<std::size_t>(e.bytes)) != want)
            return fail("window record checksum mismatch");
    }
    return true;
}

bool
CheckpointReader::loadWindow(std::size_t i,
                             std::vector<hier::BoundaryOp> &ops,
                             hier::WarmSnapshot &snap,
                             SnapshotArena &arena) const
{
    if (i >= index_.size())
        return false;
    ByteReader r(data_ + index_[i].offset,
                 static_cast<std::size_t>(index_[i].bytes));
    return decodeWindow(r, ops, snap, arena) && r.exhausted();
}

// --- CheckpointStore ----------------------------------------------

CheckpointStore::CheckpointStore(std::string root)
    : root_(std::move(root))
{
}

std::string
CheckpointStore::pathFor(const CheckpointKey &key) const
{
    return (fs::path(root_) / key.traceId /
            checkpointFileName(key))
        .string();
}

std::unique_ptr<CheckpointReader>
CheckpointStore::tryOpen(const CheckpointKey &key,
                         std::uint64_t total_refs,
                         std::uint64_t fingerprint,
                         MissReason *reason,
                         std::string *detail) const
{
    const auto miss = [&](MissReason r, const std::string &d) {
        if (reason)
            *reason = r;
        if (detail)
            *detail = d;
        return std::unique_ptr<CheckpointReader>();
    };

    const std::string path = pathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        const fs::path farm = fs::path(root_) / key.traceId;
        if (!fs::is_directory(farm, ec))
            return miss(MissReason::NoFarm,
                        "no farm directory " + farm.string());
        // The farm exists but not this key: scan siblings to say
        // whether the schedule or the config family diverged.
        bool sched_match = false;
        bool config_match = false;
        std::size_t entries = 0;
        for (const FarmEntry &e : list(key.traceId)) {
            if (!e.ok)
                continue;
            ++entries;
            if (e.meta.key.scheduleKey == key.scheduleKey)
                sched_match = true;
            if (e.meta.key.configHash == key.configHash)
                config_match = true;
        }
        if (entries == 0)
            return miss(MissReason::NoFile,
                        "farm has no valid entries");
        if (sched_match && !config_match)
            return miss(MissReason::ConfigMismatch,
                        "farm has this schedule under a different "
                        "warmer config hash");
        if (config_match && !sched_match)
            return miss(MissReason::ScheduleMismatch,
                        "farm has this warmer config under a "
                        "different sample schedule");
        return miss(MissReason::NoFile,
                    "farm has " + std::to_string(entries) +
                        " entries, none matching schedule or "
                        "config");
    }

    auto reader = std::make_unique<CheckpointReader>();
    std::string err;
    if (!reader->open(path, &err))
        return miss(MissReason::Corrupt, err);
    const CheckpointMeta &m = reader->meta();
    if (!(m.key == key))
        return miss(MissReason::Corrupt,
                    path + ": key block does not match its file "
                           "name (farm corruption)");
    if (m.totalRefs != total_refs ||
        m.traceFingerprint != fingerprint)
        return miss(MissReason::TraceMismatch,
                    path + ": built for a different trace (refs " +
                        std::to_string(m.totalRefs) + " vs " +
                        std::to_string(total_refs) + ")");
    if (reason)
        *reason = MissReason::None;
    if (detail)
        detail->clear();
    return reader;
}

std::uint64_t
CheckpointStore::publish(CheckpointWriter &writer,
                         const CheckpointKey &key,
                         std::string *err) const
{
    const fs::path farm = fs::path(root_) / key.traceId;
    std::error_code ec;
    fs::create_directories(farm, ec);
    if (ec) {
        if (err)
            *err = farm.string() +
                   ": cannot create farm directory: " +
                   ec.message();
        return 0;
    }
    return writer.finalize(pathFor(key), err);
}

std::vector<FarmEntry>
CheckpointStore::list(const std::string &trace_id) const
{
    std::vector<FarmEntry> out;
    const fs::path farm = fs::path(root_) / trace_id;
    std::error_code ec;
    if (!fs::is_directory(farm, ec))
        return out;
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(farm, ec)) {
        if (entry.path().extension() == ".mlcp")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &p : paths) {
        FarmEntry e;
        e.path = p;
        CheckpointReader reader;
        std::string why;
        if (reader.open(p, &why)) {
            e.ok = true;
            e.meta = reader.meta();
        } else {
            e.error = why;
        }
        out.push_back(std::move(e));
    }
    return out;
}

std::vector<std::string>
CheckpointStore::traceIds() const
{
    std::vector<std::string> out;
    std::error_code ec;
    if (!fs::is_directory(root_, ec))
        return out;
    for (const auto &entry :
         fs::recursive_directory_iterator(root_, ec)) {
        if (!entry.is_directory(ec))
            continue;
        // A trace farm is any directory that directly holds .mlcp
        // files (trace ids may contain '/', e.g. "suite/name").
        bool has = false;
        std::error_code ec2;
        for (const auto &f :
             fs::directory_iterator(entry.path(), ec2))
            if (f.path().extension() == ".mlcp") {
                has = true;
                break;
            }
        if (has)
            out.push_back(fs::relative(entry.path(), root_, ec)
                              .generic_string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

FarmEntry
CheckpointStore::verifyFile(const std::string &path)
{
    FarmEntry e;
    e.path = path;
    auto reader = std::make_unique<CheckpointReader>();
    std::string why;
    if (!reader->open(path, &why)) {
        e.error = why;
        return e;
    }
    std::vector<hier::BoundaryOp> ops;
    hier::WarmSnapshot snap;
    SnapshotArena arena;
    for (std::size_t i = 0; i < reader->meta().windows; ++i) {
        if (!reader->loadWindow(i, ops, snap, arena)) {
            e.error = path + ": window " + std::to_string(i) +
                      " fails structural decode";
            return e;
        }
    }
    e.ok = true;
    e.meta = reader->meta();
    return e;
}

CheckpointStore::GcResult
CheckpointStore::gc(const GcOptions &opts) const
{
    struct Candidate
    {
        fs::file_time_type mtime;
        std::string path;
        std::string traceId;
        std::uint64_t bytes;
        const char *reason = nullptr; //!< non-null = condemned
    };

    GcResult res;
    std::error_code ec;
    if (!fs::is_directory(root_, ec))
        return res;

    std::vector<Candidate> files;
    for (const std::string &id : traceIds()) {
        const fs::path farm = fs::path(root_) / id;
        std::error_code fec;
        for (const auto &f : fs::directory_iterator(farm, fec)) {
            if (f.path().extension() != ".mlcp")
                continue;
            std::error_code se, te;
            const std::uint64_t bytes = f.file_size(se);
            const fs::file_time_type mtime =
                fs::last_write_time(f.path(), te);
            if (se || te)
                continue; // raced with a concurrent retirement
            files.push_back({mtime, f.path().generic_string(), id,
                             bytes, nullptr});
        }
    }

    // Oldest first, path as the tie-break: the retirement set is a
    // pure function of the farm's (mtime, path, size) listing.
    std::sort(files.begin(), files.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });

    res.scanned = files.size();
    for (const Candidate &f : files)
        res.scannedBytes += f.bytes;
    std::uint64_t kept_bytes = res.scannedBytes;

    if (opts.maxAgeDays > 0.0) {
        const auto age_limit =
            std::chrono::duration_cast<fs::file_time_type::duration>(
                std::chrono::duration<double, std::ratio<86400>>(
                    opts.maxAgeDays));
        const fs::file_time_type cutoff =
            fs::file_time_type::clock::now() - age_limit;
        for (Candidate &f : files)
            if (f.mtime < cutoff) {
                f.reason = "age";
                kept_bytes -= f.bytes;
            }
    }

    if (opts.maxBytes > 0)
        for (Candidate &f : files) {
            if (kept_bytes <= opts.maxBytes)
                break;
            if (f.reason)
                continue;
            f.reason = "size";
            kept_bytes -= f.bytes;
        }

    std::vector<fs::path> touched_farms;
    for (const Candidate &f : files) {
        if (!f.reason)
            continue;
        res.retired.push_back({f.path, f.traceId, f.bytes,
                               f.reason});
        res.retiredBytes += f.bytes;
        if (opts.dryRun)
            continue;
        std::error_code re;
        fs::remove(f.path, re);
        // A failed removal (already gone, permissions) is not
        // fatal: the entry stays listed as retired intent; a
        // re-run will pick it up again.
        touched_farms.push_back(fs::path(f.path).parent_path());
    }
    res.keptBytes = kept_bytes;

    if (!opts.dryRun) {
        // Prune emptied farm directories, walking up to (but never
        // including) the root — trace ids may nest ("suite/name").
        std::sort(touched_farms.begin(), touched_farms.end());
        touched_farms.erase(std::unique(touched_farms.begin(),
                                        touched_farms.end()),
                            touched_farms.end());
        const fs::path root_canon =
            fs::weakly_canonical(root_, ec);
        for (fs::path dir : touched_farms) {
            while (true) {
                std::error_code de;
                if (fs::weakly_canonical(dir, de) == root_canon)
                    break;
                if (!fs::is_directory(dir, de) ||
                    !fs::is_empty(dir, de) || de)
                    break;
                if (!fs::remove(dir, de) || de)
                    break;
                ++res.removedDirs;
                dir = dir.parent_path();
            }
        }
    }
    return res;
}

} // namespace ckpt
} // namespace mlc
