/**
 * @file
 * Persistent live-point checkpoint store.
 *
 * A checkpoint file (".mlcp", magic "MLPT") persists every sample
 * window of one (trace, schedule, warmer-config) triple so a later
 * sweep — in a fresh process, with a different branch family that
 * shares the same functional prefix — loads warm state instead of
 * re-running functional warming. The store manages a directory-per-
 * trace "checkpoint farm":
 *
 *     <root>/<traceId>/<hex16(fnv(scheduleKey|configHash))>.mlcp
 *
 * File layout (all integers little-endian via ckpt::ByteWriter):
 *
 *     header   "MLPT" u32 version  u64 totalRefs
 *              u64 traceFingerprint u64 keyHash u32 keyBytes
 *              u32 windows u64 indexOffset u64 fileBytes
 *              u64 headerCheck            (fnv over all prior bytes)
 *     key      traceId, scheduleKey, configHash
 *              (varint length + bytes each; keyHash = fnv of block)
 *     records  window 0 .. window N-1     (ckpt::encodeWindow)
 *     index    N x { u64 offset, u64 bytes, u64 checksum }
 *              u64 indexCheck             (fnv over index entries)
 *
 * Integrity contract: open() verifies the magic, version, header
 * checksum, declared-vs-actual file size, key block, index checksum
 * and every window record's checksum up front — so a reader that
 * opened successfully can treat later decode failures as format
 * bugs, and a file that is truncated, bit-flipped or from another
 * version is rejected with a reason string, never half-loaded.
 * Writes go to a ".tmp.<pid>" sibling and rename() into place, so
 * a crashed builder never publishes a partial farm entry and
 * concurrent builders race benignly (last rename wins, files for
 * one key are byte-identical by construction).
 */

#ifndef MLC_CKPT_STORE_HH
#define MLC_CKPT_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/codec.hh"
#include "ckpt/livepoint.hh"
#include "trace/mem_ref.hh"

namespace mlc {
namespace ckpt {

constexpr std::uint32_t kCheckpointVersion = 1;

/** Identity of one checkpoint file inside a farm. */
struct CheckpointKey
{
    /** Farm directory, usually "<suite>/<trace name>". */
    std::string traceId;
    /** Canonical resolved sample plan (mode/seed/period/...). */
    std::string scheduleKey;
    /** Canonical functional config of the shared warmer prefix. */
    std::string configHash;

    bool
    operator==(const CheckpointKey &o) const
    {
        return traceId == o.traceId &&
               scheduleKey == o.scheduleKey &&
               configHash == o.configHash;
    }
};

/** Everything a header + key block declares (for ls/verify). */
struct CheckpointMeta
{
    std::uint32_t version = 0;
    std::uint64_t totalRefs = 0;
    std::uint64_t traceFingerprint = 0;
    CheckpointKey key;
    std::uint32_t windows = 0;
    std::uint64_t fileBytes = 0;
};

/**
 * Accumulates window records in memory, then publishes the file
 * atomically. One writer per (key, trace) — the sweep tees every
 * captured window in schedule order into addWindow().
 */
class CheckpointWriter
{
  public:
    CheckpointWriter(CheckpointKey key, std::uint64_t total_refs,
                     std::uint64_t trace_fingerprint);

    /** Serialize one window's (ops, snapshot, arena) triple. */
    void addWindow(const std::vector<hier::BoundaryOp> &ops,
                   const hier::WarmSnapshot &snap,
                   const SnapshotArena &arena);

    std::size_t windows() const { return index_.size(); }
    /** Payload bytes accumulated so far (records only). */
    std::size_t recordBytes() const { return records_.size(); }

    /**
     * Assemble header+key+records+index and write to @p path via
     * temp-then-rename. Returns the final file size, or 0 with
     * @p err set. The writer is spent afterwards.
     */
    std::uint64_t finalize(const std::string &path,
                           std::string *err);

  private:
    struct IndexEntry
    {
        std::uint64_t offset;
        std::uint64_t bytes;
        std::uint64_t checksum;
    };

    CheckpointKey key_;
    std::uint64_t totalRefs_;
    std::uint64_t fingerprint_;
    std::vector<std::uint8_t> records_;
    std::vector<IndexEntry> index_;
};

/**
 * Read-only view of one verified checkpoint file. mmap-backed when
 * the platform allows (the farm then costs page-cache, not heap,
 * across concurrent sweeps), buffered otherwise.
 */
class CheckpointReader
{
  public:
    CheckpointReader() = default;
    ~CheckpointReader();
    CheckpointReader(const CheckpointReader &) = delete;
    CheckpointReader &operator=(const CheckpointReader &) = delete;

    /**
     * Map @p path and run the full integrity check (header, key,
     * index, every window checksum). False + @p err on any defect;
     * the reader is unusable then.
     */
    bool open(const std::string &path, std::string *err);

    const CheckpointMeta &meta() const { return meta_; }

    /**
     * Decode window @p i into the caller's (ops, snap, arena).
     * Only structural self-consistency can fail here (checksums
     * were verified at open); false means the file lied about its
     * own layout and the caller must fall back.
     */
    bool loadWindow(std::size_t i,
                    std::vector<hier::BoundaryOp> &ops,
                    hier::WarmSnapshot &snap,
                    SnapshotArena &arena) const;

  private:
    struct IndexEntry
    {
        std::uint64_t offset;
        std::uint64_t bytes;
    };

    const std::uint8_t *data_ = nullptr;
    std::size_t bytes_ = 0;
    void *mapBase_ = nullptr;   //!< non-null when mmap-backed
    std::size_t mapBytes_ = 0;
    std::vector<std::uint8_t> buffer_; //!< fallback backing
    CheckpointMeta meta_;
    std::vector<IndexEntry> index_;
};

/** Outcome classification for tryOpen() (fallback diagnostics). */
enum class MissReason
{
    None,           //!< hit
    NoFarm,         //!< trace has no farm directory at all
    NoFile,         //!< farm exists but no file for this key
    ScheduleMismatch, //!< same config, different sample schedule
    ConfigMismatch, //!< same schedule, different warmer config
    TraceMismatch,  //!< key file exists but trace refs/bytes differ
    Corrupt,        //!< key file exists but failed integrity checks
};

const char *missReasonName(MissReason r);

/** One farm entry as seen by ls/verify. */
struct FarmEntry
{
    std::string path;
    bool ok = false;
    CheckpointMeta meta;  //!< valid when ok
    std::string error;    //!< set when !ok
};

/**
 * Directory-per-trace checkpoint farm rooted at one path. All
 * methods are const and thread-compatible: the store holds no
 * mutable state, so concurrent sweeps may share one instance.
 */
class CheckpointStore
{
  public:
    explicit CheckpointStore(std::string root);

    const std::string &root() const { return root_; }

    /** Final on-disk path for @p key (file need not exist). */
    std::string pathFor(const CheckpointKey &key) const;

    /**
     * Open the checkpoint for @p key, verifying that the stored
     * trace identity matches (@p total_refs, @p fingerprint).
     * On a miss, @p reason and @p detail (both optional) say why —
     * including a scan of sibling farm entries to distinguish
     * "schedule mismatch" from "config-hash mismatch".
     */
    std::unique_ptr<CheckpointReader>
    tryOpen(const CheckpointKey &key, std::uint64_t total_refs,
            std::uint64_t fingerprint, MissReason *reason,
            std::string *detail) const;

    /**
     * Publish @p writer's accumulated windows for @p key. Returns
     * the file size, or 0 with @p err. Creates the farm directory
     * as needed.
     */
    std::uint64_t publish(CheckpointWriter &writer,
                          const CheckpointKey &key,
                          std::string *err) const;

    /** All entries under one trace's farm (verified headers). */
    std::vector<FarmEntry> list(const std::string &trace_id) const;

    /** All trace ids that have a farm directory. */
    std::vector<std::string> traceIds() const;

    /**
     * Deep-verify one file: full open() plus a decode of every
     * window. Returns a FarmEntry with ok/error filled in.
     */
    static FarmEntry verifyFile(const std::string &path);

    /** @{ @name Farm retirement (gc) */

    /** What gc() retires. Zero means "no limit" for both knobs;
     *  with both zero gc() only scans. */
    struct GcOptions
    {
        /** Retire oldest-first until the farm holds at most this
         *  many bytes of .mlcp files. */
        std::uint64_t maxBytes = 0;
        /** Retire every entry whose mtime is older than this many
         *  days (fractional days allowed). */
        double maxAgeDays = 0.0;
        /** Report what would be retired without deleting. */
        bool dryRun = false;
    };

    /** One entry gc retired (or would retire, under dryRun). */
    struct GcAction
    {
        std::string path;
        std::string traceId;
        std::uint64_t bytes = 0;
        /** "age" or "size" — which limit condemned it. */
        const char *reason = "";
    };

    struct GcResult
    {
        std::uint64_t scanned = 0;
        std::uint64_t scannedBytes = 0;
        std::vector<GcAction> retired;
        std::uint64_t retiredBytes = 0;
        std::uint64_t keptBytes = 0;
        /** Emptied farm directories pruned (0 under dryRun). */
        std::uint64_t removedDirs = 0;
    };

    /**
     * Retire checkpoint files across every farm: first everything
     * over the age limit, then — if the remainder still exceeds
     * maxBytes — oldest-first (path as the tie-break, so the
     * selection is deterministic) until it fits. Farm directories
     * left empty are pruned. Checkpoints are pure caches, so
     * retirement is always safe: the next sweep that misses simply
     * re-warms and republishes.
     */
    GcResult gc(const GcOptions &opts) const;

    /** @} */

  private:
    std::string root_;
};

/** "<hex16 of fnv(scheduleKey | configHash)>.mlcp". */
std::string checkpointFileName(const CheckpointKey &key);

/**
 * Fingerprint a trace for key verification: an FNV-style fold over
 * the fields of the first min(n, 65536) references plus the total
 * count. Cheap (first pages only) yet catches "same name,
 * different trace" farm reuse. Field-walked, not memcpy'd — MemRef
 * has padding bytes whose values are indeterminate.
 */
std::uint64_t traceFingerprint(const trace::MemRef *refs,
                               std::uint64_t n);

} // namespace ckpt
} // namespace mlc

#endif // MLC_CKPT_STORE_HH
