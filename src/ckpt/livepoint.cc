#include "ckpt/livepoint.hh"

#include "cache/cache.hh"
#include "cache/tag_array.hh"

namespace mlc {
namespace ckpt {

namespace {

void
encodeTagSnapshot(ByteWriter &w, const cache::TagArraySnapshot &t)
{
    w.putU64(t.numSets);
    w.putU32(t.ways);
    w.putU32(t.blockBytes);
    w.putU32(t.subCount);
    w.putU8(static_cast<std::uint8_t>(t.policy));
    w.putVarint(t.lines);
    w.putU64(t.stamp);
    for (std::uint64_t word : t.rngState)
        w.putU64(word);
    w.putVarint(t.tagsOff);
    w.putVarint(t.validOff);
    w.putVarint(t.dirtyOff);
    w.putVarint(t.useOff);
    w.putVarint(t.insertOff);
}

bool
decodeTagSnapshot(ByteReader &r, cache::TagArraySnapshot &t)
{
    t.numSets = r.getU64();
    t.ways = r.getU32();
    t.blockBytes = r.getU32();
    t.subCount = r.getU32();
    const std::uint8_t policy = r.getU8();
    if (policy > static_cast<std::uint8_t>(cache::ReplPolicy::Random))
        return false;
    t.policy = static_cast<cache::ReplPolicy>(policy);
    t.lines = static_cast<std::size_t>(r.getVarint());
    t.stamp = r.getU64();
    for (std::uint64_t &word : t.rngState)
        word = r.getU64();
    t.tagsOff = static_cast<std::size_t>(r.getVarint());
    t.validOff = static_cast<std::size_t>(r.getVarint());
    t.dirtyOff = static_cast<std::size_t>(r.getVarint());
    t.useOff = static_cast<std::size_t>(r.getVarint());
    t.insertOff = static_cast<std::size_t>(r.getVarint());
    return !r.failed();
}

void
encodeCounts(ByteWriter &w, const cache::CacheCounts &c)
{
    w.putVarint(c.ifetchAccesses);
    w.putVarint(c.ifetchMisses);
    w.putVarint(c.loadAccesses);
    w.putVarint(c.loadMisses);
    w.putVarint(c.storeAccesses);
    w.putVarint(c.storeMisses);
    w.putVarint(c.writebacks);
    w.putVarint(c.fills);
    w.putVarint(c.prefetchFills);
    w.putVarint(c.absorbedWrites);
    w.putVarint(c.bypassedWrites);
}

bool
decodeCounts(ByteReader &r, cache::CacheCounts &c)
{
    c.ifetchAccesses = r.getVarint();
    c.ifetchMisses = r.getVarint();
    c.loadAccesses = r.getVarint();
    c.loadMisses = r.getVarint();
    c.storeAccesses = r.getVarint();
    c.storeMisses = r.getVarint();
    c.writebacks = r.getVarint();
    c.fills = r.getVarint();
    c.prefetchFills = r.getVarint();
    c.absorbedWrites = r.getVarint();
    c.bypassedWrites = r.getVarint();
    return !r.failed();
}

void
encodeCacheSnapshot(ByteWriter &w, const cache::CacheSnapshot &c)
{
    encodeTagSnapshot(w, c.tags);
    encodeCounts(w, c.counts);
}

bool
decodeCacheSnapshot(ByteReader &r, cache::CacheSnapshot &c)
{
    return decodeTagSnapshot(r, c.tags) && decodeCounts(r, c.counts);
}

/** The SoA arrays a TagArraySnapshot indexes must land inside the
 *  restored arena image; a stale offset would make restoreState
 *  read out of bounds. Sizes mirror TagArray::captureState. */
bool
tagOffsetsInBounds(const cache::TagArraySnapshot &t,
                   std::size_t arena_bytes)
{
    const std::size_t lines = t.lines;
    const auto fits = [arena_bytes](std::size_t off,
                                    std::size_t count,
                                    std::size_t elem) {
        if (count != 0 && count > (arena_bytes / elem))
            return false; // count * elem would overflow
        const std::size_t bytes = count * elem;
        return off <= arena_bytes && bytes <= arena_bytes - off;
    };
    return fits(t.tagsOff, lines, sizeof(Addr)) &&
           fits(t.validOff, lines, sizeof(std::uint32_t)) &&
           fits(t.dirtyOff, lines, sizeof(std::uint32_t)) &&
           fits(t.useOff, lines, sizeof(std::uint64_t)) &&
           fits(t.insertOff, lines, sizeof(std::uint64_t));
}

} // namespace

void
encodeWindow(ByteWriter &w,
             const std::vector<hier::BoundaryOp> &ops,
             const hier::WarmSnapshot &snap,
             const SnapshotArena &arena)
{
    // --- boundary ops ---
    w.putVarint(ops.size());
    std::uint64_t prev_addr = 0;
    for (const hier::BoundaryOp &op : ops) {
        std::uint8_t flags = 0;
        if (op.kind == hier::BoundaryOp::Kind::Write)
            flags |= 1u;
        if (op.countRead)
            flags |= 2u;
        w.putU8(flags);
        w.putVarint(op.bytes);
        const std::uint64_t addr =
            static_cast<std::uint64_t>(op.addr);
        w.putVarint(zigzagEncode(static_cast<std::int64_t>(
            addr - prev_addr)));
        prev_addr = addr;
    }

    // --- snapshot metadata ---
    w.putU8(snap.splitL1 ? 1 : 0);
    w.putVarint(snap.prefixLevels);
    if (snap.splitL1)
        encodeCacheSnapshot(w, snap.l1i);
    encodeCacheSnapshot(w, snap.l1d);
    w.putVarint(snap.levels.size());
    for (const cache::CacheSnapshot &level : snap.levels)
        encodeCacheSnapshot(w, level);
    w.putVarint(snap.instructions);
    w.putVarint(snap.ifetches);
    w.putVarint(snap.loads);
    w.putVarint(snap.stores);
    w.putVarint(snap.refsRun);
    w.putVarint(snap.l1ReadMissCount);
    w.putVarint(snap.readReqs.size());
    for (std::uint64_t v : snap.readReqs)
        w.putVarint(v);
    w.putVarint(snap.readMisses.size());
    for (std::uint64_t v : snap.readMisses)
        w.putVarint(v);

    // --- arena image ---
    const std::size_t raw = arena.bytesUsed();
    const std::vector<std::uint8_t> packed =
        rleCompress(raw ? arena.at(0) : nullptr, raw);
    w.putVarint(raw);
    w.putVarint(packed.size());
    w.putBytes(packed.data(), packed.size());
}

bool
decodeWindow(ByteReader &r,
             std::vector<hier::BoundaryOp> &ops,
             hier::WarmSnapshot &snap,
             SnapshotArena &arena)
{
    // --- boundary ops ---
    const std::uint64_t op_count = r.getVarint();
    // Each op costs >= 3 bytes on the wire; a count the remaining
    // bytes cannot hold is corruption, not a big window.
    if (r.failed() || op_count > r.remaining())
        return false;
    ops.clear();
    ops.reserve(static_cast<std::size_t>(op_count));
    std::uint64_t prev_addr = 0;
    for (std::uint64_t i = 0; i < op_count; ++i) {
        const std::uint8_t flags = r.getU8();
        if (flags & ~3u)
            return false;
        hier::BoundaryOp op;
        op.kind = (flags & 1u) ? hier::BoundaryOp::Kind::Write
                               : hier::BoundaryOp::Kind::Read;
        op.countRead = (flags & 2u) != 0;
        op.bytes = static_cast<std::uint32_t>(r.getVarint());
        const std::int64_t delta =
            zigzagDecode(r.getVarint());
        prev_addr += static_cast<std::uint64_t>(delta);
        op.addr = static_cast<Addr>(prev_addr);
        if (r.failed())
            return false;
        ops.push_back(op);
    }

    // --- snapshot metadata ---
    const std::uint8_t split = r.getU8();
    if (split > 1)
        return false;
    snap.splitL1 = split != 0;
    snap.prefixLevels =
        static_cast<std::size_t>(r.getVarint());
    if (snap.splitL1) {
        if (!decodeCacheSnapshot(r, snap.l1i))
            return false;
    } else {
        snap.l1i = cache::CacheSnapshot{};
    }
    if (!decodeCacheSnapshot(r, snap.l1d))
        return false;
    const std::uint64_t level_count = r.getVarint();
    if (r.failed() || level_count != snap.prefixLevels ||
        level_count > r.remaining())
        return false;
    snap.levels.resize(static_cast<std::size_t>(level_count));
    for (cache::CacheSnapshot &level : snap.levels)
        if (!decodeCacheSnapshot(r, level))
            return false;
    snap.instructions = r.getVarint();
    snap.ifetches = r.getVarint();
    snap.loads = r.getVarint();
    snap.stores = r.getVarint();
    snap.refsRun = r.getVarint();
    snap.l1ReadMissCount = r.getVarint();
    const std::uint64_t reqs = r.getVarint();
    if (r.failed() || reqs != snap.prefixLevels)
        return false;
    snap.readReqs.resize(static_cast<std::size_t>(reqs));
    for (std::uint64_t &v : snap.readReqs)
        v = r.getVarint();
    const std::uint64_t misses = r.getVarint();
    if (r.failed() || misses != snap.prefixLevels)
        return false;
    snap.readMisses.resize(static_cast<std::size_t>(misses));
    for (std::uint64_t &v : snap.readMisses)
        v = r.getVarint();
    if (r.failed())
        return false;

    // --- arena image ---
    const std::uint64_t raw = r.getVarint();
    const std::uint64_t packed = r.getVarint();
    if (r.failed() || packed > r.remaining())
        return false;
    const std::uint8_t *src =
        r.view(static_cast<std::size_t>(packed));
    if (src == nullptr && packed != 0)
        return false;
    arena.reset();
    const std::size_t off =
        arena.alloc(static_cast<std::size_t>(raw));
    // First alloc of a reset arena: stored offsets stay valid.
    if (off != 0)
        return false;
    if (raw != 0 &&
        !rleDecompress(src, static_cast<std::size_t>(packed),
                       arena.at(0),
                       static_cast<std::size_t>(raw)))
        return false;

    // Offsets were checksum-protected, but a wrong-but-valid file
    // must still never index outside the image it shipped with.
    const std::size_t bytes = static_cast<std::size_t>(raw);
    if (snap.splitL1 &&
        !tagOffsetsInBounds(snap.l1i.tags, bytes))
        return false;
    if (!tagOffsetsInBounds(snap.l1d.tags, bytes))
        return false;
    for (const cache::CacheSnapshot &level : snap.levels)
        if (!tagOffsetsInBounds(level.tags, bytes))
            return false;
    return true;
}

} // namespace ckpt
} // namespace mlc
