/**
 * @file
 * Sampling schedule over a reference stream.
 *
 * The sampled engine (SMARTS-style, see DESIGN.md section 5d)
 * replays only a scheduled subset of a trace with the timing
 * simulator and estimates whole-trace CPI from the measured
 * windows. The schedule partitions [0, totalRefs) into four kinds
 * of segment, repeating with period P:
 *
 *   Skip     references never presented to the simulator (free on
 *            a materialized span — this is where the speedup lives)
 *   Warm     functional replay (tags and dirty bits evolve, no
 *            timing) to rebuild cache state before a measurement
 *   Detail   timed replay whose cycles are discarded — fills write
 *            buffers and other clock-relative state so the window
 *            does not start from an artificially idle machine
 *   Measure  timed replay bracketed by counter snapshots; each
 *            window contributes one CPI sample
 *
 * Window placement within a period is either systematic (always at
 * the end of the period) or seeded-random (uniform over the legal
 * offsets, deterministic for a fixed seed). Random placement guards
 * against pathological alignment between the period and any
 * periodicity in the workload.
 */

#ifndef MLC_SAMPLE_SCHEDULER_HH
#define MLC_SAMPLE_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mlc {
namespace sample {

/** How measurement windows are placed within each period. */
enum class SampleMode
{
    Systematic, //!< at the end of every period
    Random      //!< uniform within the period, seeded
};

/** User-facing knobs of the sampled engine. */
struct SampledOptions
{
    SampleMode mode = SampleMode::Systematic;
    /** Placement seed (Random mode only). */
    std::uint64_t seed = 1;
    /** Sampling period P in references; 0 derives it from the
     *  trace length (about kAutoWindows windows). */
    std::uint64_t period = 0;
    /** Measured window length U. */
    std::uint64_t measureRefs = 2'000;
    /** Timed-but-discarded warm D directly before each window. */
    std::uint64_t detailWarmRefs = 1'000;
    /** Functional warm W before the detail warm (clipped to the
     *  gap actually available before the window). */
    std::uint64_t functionalWarmRefs = 30'000;
    /**
     * Adaptive warming: derive the functional warm length from the
     * trace's measured stack-distance tail at the deepest cache's
     * capacity (DESIGN.md section 5d shows W is the accuracy knob
     * and its right value is workload-dependent) instead of the
     * fixed functionalWarmRefs above, which then acts only as the
     * fallback when the probe is degenerate. The engine records
     * which path produced the warm length in
     * SampledResult::adaptiveWarmUsed.
     */
    bool adaptiveWarm = false;
    /** Prefix of the trace the adaptive-warm probe measures. */
    std::uint64_t adaptiveWarmProbeRefs = 2'000'000;
    /** Never stop adaptively before this many windows. */
    std::uint64_t minWindows = 30;
    /**
     * Adaptive stopping: stop once the CPI interval's half-width
     * falls below this fraction of the mean (e.g. 0.01 for "CPI
     * known to 1%") at #confidence. 0 runs the whole schedule.
     */
    double targetRelHalfWidth = 0.0;
    /** Confidence level for the interval and the stopping rule. */
    double confidence = 0.95;

    /** Auto-period target window count. */
    static constexpr std::uint64_t kAutoWindows = 200;

    /**
     * Canonical identity string over every result-affecting knob.
     * Two option sets with equal keys produce bit-identical
     * schedules and therefore bit-identical sampled results on the
     * same trace — the memo-key contract the query server relies
     * on (serve::Server includes this in its result-cache key).
     */
    std::string key() const;
};

/** One contiguous piece of the schedule. */
enum class SegmentKind
{
    Skip,
    Warm,
    Detail,
    Measure
};

struct Segment
{
    SegmentKind kind;
    std::uint64_t begin; //!< first reference index
    std::uint64_t len;   //!< references
};

/** The options resolved against a concrete trace length. */
struct SamplePlan
{
    std::uint64_t totalRefs = 0;
    std::uint64_t period = 0;
    std::uint64_t measureRefs = 0;
    std::uint64_t detailWarmRefs = 0;
    std::uint64_t functionalWarmRefs = 0;
    std::uint64_t windows = 0; //!< full windows the schedule holds
};

/**
 * Builds and owns the segment list for one trace. Segments are
 * contiguous, non-overlapping, and cover [0, totalRefs) exactly
 * (asserted by tests); the engine simply walks them in order.
 */
class SampleScheduler
{
  public:
    /** Panics if @p total_refs cannot hold even one window. */
    SampleScheduler(std::uint64_t total_refs,
                    const SampledOptions &opts);

    const SamplePlan &plan() const { return plan_; }
    const std::vector<Segment> &segments() const
    {
        return segments_;
    }
    std::uint64_t windowCount() const { return plan_.windows; }

  private:
    SamplePlan plan_;
    std::vector<Segment> segments_;
};

} // namespace sample
} // namespace mlc

#endif // MLC_SAMPLE_SCHEDULER_HH
