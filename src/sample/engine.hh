/**
 * @file
 * The sampled replay engine: confidence-interval-bounded CPI from
 * a scheduled subset of a trace.
 *
 * Where the timing engine replays every reference and the one-pass
 * engine trades the timing model for an analytical one, the sampled
 * engine keeps the exact timing simulator but points it at a few
 * hundred short windows (see sample/scheduler.hh for the schedule
 * anatomy). Each window yields one CPI sample; the estimate is the
 * sample mean with a Student-t confidence interval, and an optional
 * adaptive stopping rule ends the run once the interval is tight
 * enough. Skipped references cost nothing on a materialized span,
 * which is where the order-of-magnitude speedup over full replay
 * comes from; bench/sampled_vs_full measures it and checks the
 * ground-truth CPI against the reported interval.
 *
 * Determinism: for fixed options (including seed) the schedule, the
 * replayed references and therefore every output bit are identical
 * run to run, and runSuiteSampled() is bit-identical for any jobs
 * count (slot-indexed workers, fixed-order reduction — the same
 * contract as expt::runSuite).
 */

#ifndef MLC_SAMPLE_ENGINE_HH
#define MLC_SAMPLE_ENGINE_HH

#include <cstdint>
#include <vector>

#include "expt/design_space.hh"
#include "expt/workload_suite.hh"
#include "hier/hierarchy.hh"
#include "sample/scheduler.hh"
#include "stats/streaming_stats.hh"

namespace mlc {
namespace sample {

/** What one sampled run of one trace produces. */
struct SampledResult
{
    /**
     * The headline CPI estimate: total measured cycles over total
     * measured instructions (the ratio estimator). Windows are
     * equal-length in references, not instructions, so the plain
     * mean of per-window CPIs overweights instruction-poor (and
     * typically slower) windows; the ratio form removes that bias.
     */
    double estCpi = 0.0;
    /** estCpi normalized by the ideal-machine CPI computed from
     *  the functional counters (the sampled analogue of
     *  SimResults::relativeExecTime). */
    double estRelExecTime = 0.0;
    /** Student-t interval on CPI at the requested confidence. */
    stats::ConfidenceInterval cpiInterval{};
    /** The raw per-window CPI accumulator (mean/variance/extrema;
     *  mergeable across shards). */
    stats::StreamingStats windowCpi;

    /** True when the adaptive rule stopped before the schedule
     *  was exhausted. */
    bool stoppedEarly = false;

    /** @{ @name Measured-window totals (the ratio estimator's
     *  numerator and denominator) */
    std::uint64_t cyclesMeasured = 0;
    std::uint64_t instructionsMeasured = 0;
    /** @} */

    /** @{ @name Reference accounting (sums to refsTotal) */
    std::uint64_t refsMeasured = 0;
    std::uint64_t refsDetailWarmed = 0;
    std::uint64_t refsFunctionalWarmed = 0;
    std::uint64_t refsSkipped = 0;
    std::uint64_t refsTotal = 0;
    /** @} */

    /**
     * Counter-level results over every reference the simulator
     * actually replayed (warm + detail + measure). Miss ratios here
     * are exact for that subset; the timing fields only reflect the
     * timed segments and should be ignored in favour of estCpi.
     */
    hier::SimResults functional;
};

/**
 * Sample @p refs under @p params. The span is replayed zero-copy;
 * skipped segments are never touched.
 */
SampledResult runSampled(const hier::HierarchyParams &params,
                         trace::RefSpan refs,
                         const SampledOptions &opts);

/** Suite-level aggregate, mirroring expt::SuiteResults. */
struct SampledSuiteResults
{
    double relExecTime = 0.0; //!< mean of per-trace estimates
    double cpi = 0.0;         //!< mean of per-trace estimates
    /** Widest per-trace relative half-width — the suite's
     *  worst-case sampling uncertainty. */
    double maxRelHalfWidth = 0.0;
    std::uint64_t traces = 0;
    std::vector<SampledResult> perTrace;
};

/**
 * runSampled() over every trace in @p store, @p jobs at a time.
 * Bit-identical for any @p jobs.
 */
SampledSuiteResults
runSuiteSampled(const hier::HierarchyParams &params,
                const expt::TraceStore &store,
                const SampledOptions &opts, std::size_t jobs = 1);

/**
 * The Section 4 design-space grid priced with the sampled engine:
 * every (size, cycle) cell holds the suite-mean sampled relative
 * execution time of base.withL2(size, cycle). Mirrors
 * onepass::buildGrid; deterministic for any @p jobs.
 */
expt::DesignSpaceGrid
buildGrid(const hier::HierarchyParams &base,
          const std::vector<std::uint64_t> &sizes,
          const std::vector<std::uint32_t> &cycles,
          const expt::TraceStore &store, const SampledOptions &opts,
          std::size_t jobs = 1);

} // namespace sample
} // namespace mlc

#endif // MLC_SAMPLE_ENGINE_HH
