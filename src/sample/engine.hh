/**
 * @file
 * The sampled replay engine: confidence-interval-bounded CPI from
 * a scheduled subset of a trace.
 *
 * Where the timing engine replays every reference and the one-pass
 * engine trades the timing model for an analytical one, the sampled
 * engine keeps the exact timing simulator but points it at a few
 * hundred short windows (see sample/scheduler.hh for the schedule
 * anatomy). Each window yields one CPI sample; the estimate is the
 * sample mean with a Student-t confidence interval, and an optional
 * adaptive stopping rule ends the run once the interval is tight
 * enough. Skipped references cost nothing on a materialized span,
 * which is where the order-of-magnitude speedup over full replay
 * comes from; bench/sampled_vs_full measures it and checks the
 * ground-truth CPI against the reported interval.
 *
 * Determinism: for fixed options (including seed) the schedule, the
 * replayed references and therefore every output bit are identical
 * run to run, and runSuiteSampled() is bit-identical for any jobs
 * count (slot-indexed workers, fixed-order reduction — the same
 * contract as expt::runSuite).
 */

#ifndef MLC_SAMPLE_ENGINE_HH
#define MLC_SAMPLE_ENGINE_HH

#include <cstdint>
#include <vector>

#include "expt/design_space.hh"
#include "expt/workload_suite.hh"
#include "hier/hierarchy.hh"
#include "sample/scheduler.hh"
#include "stats/streaming_stats.hh"
#include "util/bits.hh"

namespace mlc {
namespace trace {
class MappedBinaryTrace;
} // namespace trace

namespace sample {

/** What one sampled run of one trace produces. */
struct SampledResult
{
    /**
     * The headline CPI estimate: total measured cycles over total
     * measured instructions (the ratio estimator). Windows are
     * equal-length in references, not instructions, so the plain
     * mean of per-window CPIs overweights instruction-poor (and
     * typically slower) windows; the ratio form removes that bias.
     */
    double estCpi = 0.0;
    /** estCpi normalized by the ideal-machine CPI computed from
     *  the functional counters (the sampled analogue of
     *  SimResults::relativeExecTime). */
    double estRelExecTime = 0.0;
    /** Student-t interval on CPI at the requested confidence. */
    stats::ConfidenceInterval cpiInterval{};
    /** The raw per-window CPI accumulator (mean/variance/extrema;
     *  mergeable across shards). */
    stats::StreamingStats windowCpi;
    /** Per-window CPI samples in schedule order — what matched-pair
     *  comparison aligns across two configurations. */
    std::vector<double> windowCpiValues;

    /** True when the adaptive rule stopped before the schedule
     *  was exhausted. */
    bool stoppedEarly = false;

    /** Functional warm length per window the schedule actually
     *  used (after clipping, fixed or adaptively derived). */
    std::uint64_t warmRefsPerWindow = 0;
    /** True when warmRefsPerWindow came from the stack-distance
     *  probe rather than SampledOptions::functionalWarmRefs. */
    bool adaptiveWarmUsed = false;

    /** @{ @name Measured-window totals (the ratio estimator's
     *  numerator and denominator) */
    std::uint64_t cyclesMeasured = 0;
    std::uint64_t instructionsMeasured = 0;
    /** @} */

    /** @{ @name Reference accounting (sums to refsTotal) */
    std::uint64_t refsMeasured = 0;
    std::uint64_t refsDetailWarmed = 0;
    std::uint64_t refsFunctionalWarmed = 0;
    std::uint64_t refsSkipped = 0;
    std::uint64_t refsTotal = 0;
    /** @} */

    /**
     * Counter-level results over every reference the simulator
     * actually replayed (warm + detail + measure). Miss ratios here
     * are exact for that subset; the timing fields only reflect the
     * timed segments and should be ignored in favour of estCpi.
     */
    hier::SimResults functional;
};

/**
 * Sample @p refs under @p params. The span is replayed zero-copy;
 * skipped segments are never touched.
 *
 * @param mapped when @p refs is a prefix of a lazily validated
 *        MappedBinaryTrace's span, pass the trace here: each
 *        non-Skip segment is validated just before replay and Skip
 *        segments never fault their pages in — the streaming-skip
 *        path for >RAM traces. nullptr replays @p refs as-is.
 */
SampledResult runSampled(
    const hier::HierarchyParams &params, trace::RefSpan refs,
    const SampledOptions &opts,
    const trace::MappedBinaryTrace *mapped = nullptr);

/**
 * Resolve the per-window functional warm length for @p refs under
 * adaptive warming: probe the leading
 * min(adaptiveWarmProbeRefs, size) references with a
 * stack-distance analyzer at the deepest cache's block
 * granularity, read off the miss ratio at its capacity, and size
 * the warm so expected fills cover the cache about twice over
 * (W = 2 C / (readFraction * missRatio(C)) references), clamped to
 * [measureRefs, size/2]. Degenerate probes (no reads, zero tail
 * miss ratio) fall back to the fixed length or the high clamp.
 */
std::uint64_t
deriveFunctionalWarmRefs(trace::RefSpan refs,
                         const hier::HierarchyParams &params,
                         const SampledOptions &opts);

namespace detail {

/**
 * One Measure window, shared verbatim between runSampled() and the
 * checkpointed sweep so the two are bit-identical by construction:
 * bracket the timed run with tick/instruction snapshots, push the
 * window CPI, accumulate the ratio-estimator totals, and apply the
 * adaptive stopping rule.
 */
inline void
measureWindow(hier::HierarchySimulator &sim, trace::RefSpan span,
              const SampledOptions &opts, SampledResult &out)
{
    const Tick ticks0 = sim.now();
    const std::uint64_t instr0 = sim.instructionCount();
    sim.run(span);
    out.refsMeasured += span.size;
    const std::uint64_t instr = sim.instructionCount() - instr0;
    // A window with no instruction fetches has no CPI (it cannot
    // happen with the suite generators, but a pathological trace
    // must not divide by zero).
    if (instr > 0) {
        const Tick dticks = sim.now() - ticks0;
        const double cycles =
            static_cast<double>(dticks) /
            static_cast<double>(sim.cpuCycleTicks());
        const double cpi = cycles / static_cast<double>(instr);
        out.windowCpi.push(cpi);
        out.windowCpiValues.push_back(cpi);
        out.cyclesMeasured += divCeil(dticks, sim.cpuCycleTicks());
        out.instructionsMeasured += instr;
    }
    if (opts.targetRelHalfWidth > 0.0 &&
        out.windowCpi.count() >= opts.minWindows) {
        const auto ci = out.windowCpi.interval(opts.confidence);
        if (ci.relativeHalfWidth() <= opts.targetRelHalfWidth)
            out.stoppedEarly = true;
    }
}

/**
 * Shared epilogue: close the reference accounting, form the ratio
 * estimate and its re-centred interval, and collect the functional
 * counters. Panics when no window produced a CPI sample.
 */
void finishSampled(hier::HierarchySimulator &sim,
                   const SampledOptions &opts, SampledResult &out);

} // namespace detail

/** Suite-level aggregate, mirroring expt::SuiteResults. */
struct SampledSuiteResults
{
    double relExecTime = 0.0; //!< mean of per-trace estimates
    double cpi = 0.0;         //!< mean of per-trace estimates
    /** Widest per-trace relative half-width — the suite's
     *  worst-case sampling uncertainty. */
    double maxRelHalfWidth = 0.0;
    std::uint64_t traces = 0;
    std::vector<SampledResult> perTrace;
};

/**
 * runSampled() over every trace in @p store, @p jobs at a time.
 * Bit-identical for any @p jobs.
 */
SampledSuiteResults
runSuiteSampled(const hier::HierarchyParams &params,
                const expt::TraceStore &store,
                const SampledOptions &opts, std::size_t jobs = 1);

/**
 * The Section 4 design-space grid priced with the sampled engine:
 * every (size, cycle) cell holds the suite-mean sampled relative
 * execution time of base.withL2(size, cycle). Mirrors
 * onepass::buildGrid; deterministic for any @p jobs.
 */
expt::DesignSpaceGrid
buildGrid(const hier::HierarchyParams &base,
          const std::vector<std::uint64_t> &sizes,
          const std::vector<std::uint32_t> &cycles,
          const expt::TraceStore &store, const SampledOptions &opts,
          std::size_t jobs = 1);

} // namespace sample
} // namespace mlc

#endif // MLC_SAMPLE_ENGINE_HH
