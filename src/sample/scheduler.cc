#include "sample/scheduler.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/random.hh"

namespace mlc {
namespace sample {

std::string
SampledOptions::key() const
{
    std::string k = "mode=";
    k += mode == SampleMode::Systematic ? "sys" : "rand";
    k += ";seed=" + std::to_string(seed);
    k += ";period=" + std::to_string(period);
    k += ";measure=" + std::to_string(measureRefs);
    k += ";detail=" + std::to_string(detailWarmRefs);
    k += ";warm=" + std::to_string(functionalWarmRefs);
    k += ";adaptive=" + std::to_string(adaptiveWarm ? 1 : 0);
    k += ";probe=" + std::to_string(adaptiveWarmProbeRefs);
    k += ";minwin=" + std::to_string(minWindows);
    k += ";target=" + std::to_string(targetRelHalfWidth);
    k += ";conf=" + std::to_string(confidence);
    return k;
}

SampleScheduler::SampleScheduler(std::uint64_t total_refs,
                                 const SampledOptions &opts)
{
    if (opts.measureRefs == 0)
        mlc_panic("sample: measured window length must be "
                  "non-zero");
    const std::uint64_t detail = opts.detailWarmRefs;
    const std::uint64_t measure = opts.measureRefs;
    if (total_refs < detail + measure)
        mlc_panic("sample: trace of ", total_refs,
                  " refs cannot hold one ", detail, "+", measure,
                  "-ref window");

    // Clip the functional warm to what the trace can actually hold
    // in front of a window, then resolve the period. The block is
    // everything the simulator touches per period.
    const std::uint64_t warm = std::min(
        opts.functionalWarmRefs, total_refs - detail - measure);
    const std::uint64_t block = warm + detail + measure;

    std::uint64_t period = opts.period;
    if (period == 0)
        period = std::max<std::uint64_t>(
            block, total_refs / SampledOptions::kAutoWindows);
    period = std::max(period, block);

    plan_.totalRefs = total_refs;
    plan_.period = period;
    plan_.measureRefs = measure;
    plan_.detailWarmRefs = detail;
    plan_.functionalWarmRefs = warm;
    plan_.windows = total_refs / period;
    if (plan_.windows == 0)
        mlc_panic("sample: period ", period, " exceeds trace (",
                  total_refs, " refs)");

    Rng rng(opts.seed ^ 0x5a3c9e1fULL);
    segments_.reserve(plan_.windows * 4 + 1);
    std::uint64_t pos = 0;
    for (std::uint64_t w = 0; w < plan_.windows; ++w) {
        const std::uint64_t p0 = w * period;
        const std::uint64_t slack = period - block;
        const std::uint64_t offset =
            opts.mode == SampleMode::Systematic
                ? slack
                : (slack == 0 ? 0 : rng.nextBounded(slack + 1));
        const std::uint64_t start = p0 + offset;
        if (start > pos)
            segments_.push_back(
                {SegmentKind::Skip, pos, start - pos});
        pos = start;
        if (warm > 0) {
            segments_.push_back({SegmentKind::Warm, pos, warm});
            pos += warm;
        }
        if (detail > 0) {
            segments_.push_back({SegmentKind::Detail, pos, detail});
            pos += detail;
        }
        segments_.push_back({SegmentKind::Measure, pos, measure});
        pos += measure;
    }
    if (pos < total_refs)
        segments_.push_back(
            {SegmentKind::Skip, pos, total_refs - pos});
}

} // namespace sample
} // namespace mlc
