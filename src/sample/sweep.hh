/**
 * @file
 * Checkpoint-and-branch sampled design-space sweeps: one warming
 * pass per window for an entire grid of configurations.
 *
 * A sampled sweep over N configurations repeats the same functional
 * warming N times — and warming dominates the schedule (W is 10-30x
 * the measured window). But untimed replay evolves only functional
 * state (tags, dirty bits, reference counters), and configurations
 * that share their L1 organization and a prefix of downstream
 * levels evolve *identical* functional state above the first
 * divergent level: the traffic entering that level during warming
 * depends only on the shared prefix. So the sweep warms once on a
 * truncated "warmer" machine (the shared prefix only), records the
 * traffic crossing its memory boundary, and for each configuration
 * branches: replay the recorded boundary traffic into the divergent
 * levels, restore the prefix snapshot, then run the timed
 * Detail+Measure window as usual. The result is bit-identical to
 * warming every configuration straight-line (golden-tested), at
 * roughly 1/N of the warming cost.
 *
 * The canonical L2-size sweep shares *zero* downstream levels (the
 * L2 itself differs), so the snapshot covers just the L1s and the
 * boundary traffic is the L1 miss stream — still the bulk of the
 * warming work avoided, since the warmer replays W references once
 * while each configuration replays only the recorded misses.
 *
 * See DESIGN.md section 5e for the full compatibility rule and the
 * bit-exactness argument.
 */

#ifndef MLC_SAMPLE_SWEEP_HH
#define MLC_SAMPLE_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/store.hh"
#include "sample/engine.hh"
#include "stats/streaming_stats.hh"

namespace mlc {
namespace sample {

/**
 * Store-backed persistence for a checkpointed sweep. With a store
 * attached, the sweep first probes the trace's checkpoint farm for
 * a live-point file matching (traceId, resolved schedule, warmer
 * config); on a hit every window's warm state is loaded instead of
 * re-warmed (the warmer machine is never even constructed), and on
 * a miss the sweep optionally tees the windows it warms anyway into
 * a new farm entry, so the *next* sweep — any branch family sharing
 * this warmer, in any process — replays instead of warming. Results
 * are bit-identical either way (the acceptance contract).
 */
struct CheckpointPolicy
{
    /** nullptr = in-memory checkpointing only (the PR 5 path). */
    ckpt::CheckpointStore *store = nullptr;
    /** Farm directory for this trace, e.g. "suite/trace-name". */
    std::string traceId;
    /** Tee a new checkpoint file when the farm misses. */
    bool buildIfMissing = true;
};

/** What runSweepCheckpointed() produces. */
struct SweepResult
{
    /** One SampledResult per input configuration, in input order —
     *  bit-identical to runSampled() on that configuration with the
     *  sweep's resolved options. */
    std::vector<SampledResult> perConfig;
    /** False when the configurations were not warm-compatible and
     *  the sweep fell back to independent straight-line runs. */
    bool checkpointed = false;
    /** Downstream levels covered by the shared snapshot (0 for the
     *  canonical L2 sweep: only the L1s are shared). */
    std::size_t prefixLevels = 0;
    /** True when warm state came from a checkpoint file instead of
     *  functional warming. */
    bool fromCheckpointFile = false;
    /** True when this sweep published a new farm entry. */
    bool builtCheckpointFile = false;
    /** Non-empty when a checkpoint path was skipped: the fallback
     *  reason ("incompatible-geometry", or a ckpt::MissReason name
     *  such as "config-hash-mismatch"), logged once per sweep. */
    std::string checkpointFallback;
};

/**
 * Sample every configuration in @p configs over @p refs with one
 * shared warming pass per window.
 *
 * Requirements for the checkpointed path: all configurations
 * warm-compatible with configs[0] (same split/L1 organization, no
 * solo co-simulation — see hier::warmCompatible()). Otherwise the
 * sweep silently falls back to independent runSampled() calls and
 * reports checkpointed = false.
 *
 * Adaptive warming (opts.adaptiveWarm) is resolved *once* for the
 * whole sweep — against the configuration with the largest deepest
 * cache, so the warm length covers every machine in the grid — and
 * the resolved fixed length is used for all configurations; per-
 * config derivation would give each machine a different schedule
 * and break both window alignment and the shared warming.
 *
 * Determinism: bit-identical for any @p jobs (slot-indexed results,
 * per-window barrier, fixed-order reduction), and bit-identical to
 * straight-line runSampled() per configuration.
 *
 * With a CheckpointPolicy whose store is non-null the sweep also
 * engages for a *single* configuration (the farm replay benefit
 * does not need siblings to share with); without a store a lone
 * configuration still takes the straight-line path as before.
 * In reader mode a lazily validated @p mapped trace never touches
 * its warm segments' pages at all — only Detail and Measure ranges
 * are validated and replayed.
 *
 * @param jobs configurations branched concurrently per window.
 * @param mapped see runSampled(); enables lazy range validation.
 * @param policy see CheckpointPolicy; default = no persistence.
 */
SweepResult runSweepCheckpointed(
    const std::vector<hier::HierarchyParams> &configs,
    trace::RefSpan refs, const SampledOptions &opts,
    std::size_t jobs = 1,
    const trace::MappedBinaryTrace *mapped = nullptr,
    const CheckpointPolicy &policy = {});

/**
 * Canonical schedule identity for checkpoint keying: the resolved
 * plan plus placement mode and seed. Deliberately *excludes* the
 * adaptive-stopping knobs (minWindows/target/confidence) — they
 * only truncate how many windows a sweep consumes, never what any
 * window's record contains, so one farm entry serves every
 * stopping rule.
 */
std::string scheduleKeyFor(const SamplePlan &plan, SampleMode mode,
                           std::uint64_t seed);

/**
 * Canonical functional identity of a sweep's shared warmer: the
 * split/unified shape plus every cache::functionallyEqual() field
 * of the L1s and the first @p prefix_levels downstream levels.
 * Timing fields are excluded (functional warm state is timing-
 * blind), as are tag seeds (deterministic positional constants).
 */
std::string warmerConfigKey(const hier::HierarchyParams &params,
                            std::size_t prefix_levels);

/** What buildCheckpointFarm() reports. */
struct FarmBuildResult
{
    /** False when a valid farm entry already existed (no work). */
    bool built = false;
    std::uint64_t windows = 0;
    std::uint64_t fileBytes = 0;
    std::string path;
};

/**
 * Offline farm construction: run the shared warmer over the whole
 * schedule (no branch configurations, no timed replay) and publish
 * the live-point file for (@p trace_id, resolved schedule, warmer
 * prefix of @p configs). A valid existing entry short-circuits.
 * The file is byte-identical to what a teeing sweep would publish.
 * Panics when the family is not warm-compatible — an offline
 * builder asked to checkpoint an uncheckpointable family is a
 * caller bug, not a runtime fallback.
 */
FarmBuildResult buildCheckpointFarm(
    const std::vector<hier::HierarchyParams> &configs,
    trace::RefSpan refs, const SampledOptions &opts,
    ckpt::CheckpointStore &store, const std::string &trace_id,
    const trace::MappedBinaryTrace *mapped = nullptr);

/** What runPaired() produces. */
struct PairedResult
{
    SampledResult a;
    SampledResult b;
    /** Per-window CPI pairs (covariance, correlation, delta). */
    stats::PairedStats pairs;
    /** Student-t interval on mean per-window CPI(b) - CPI(a). The
     *  half-width shrinks by the (typically large) window-to-window
     *  correlation the two runs share, so a paired comparison
     *  resolves differences far smaller than either absolute
     *  interval could. */
    stats::ConfidenceInterval deltaInterval{};
    std::uint64_t windowsPaired = 0;
};

/**
 * Matched-pair comparison of two configurations: one shared
 * SampleSchedule, both machines measured over the *same* windows
 * via the checkpointed sweep, and a confidence interval on the
 * per-window CPI difference. Adaptive stopping is disabled (both
 * runs must cover the full schedule so windows align one-to-one).
 */
PairedResult runPaired(const hier::HierarchyParams &a,
                       const hier::HierarchyParams &b,
                       trace::RefSpan refs,
                       const SampledOptions &opts,
                       std::size_t jobs = 1,
                       const trace::MappedBinaryTrace *mapped =
                           nullptr);

/**
 * The Section 4 design-space grid priced with checkpointed sampled
 * sweeps: every (size, cycle) cell holds the suite-mean sampled
 * relative execution time of base.withL2(size, cycle), exactly as
 * sample::buildGrid() — but all cells of a trace share each
 * window's warming pass instead of repeating it per cell.
 * Deterministic for any @p jobs.
 *
 * With @p ckpt_store non-null each trace's sweep goes through the
 * checkpoint farm (traceId = "<farm_tag>/<spec name>", or just the
 * spec name when the tag is empty): hits replay from disk, misses
 * warm once and tee the farm entry for next time.
 */
expt::DesignSpaceGrid buildGridCheckpointed(
    const hier::HierarchyParams &base,
    const std::vector<std::uint64_t> &sizes,
    const std::vector<std::uint32_t> &cycles,
    const expt::TraceStore &store, const SampledOptions &opts,
    std::size_t jobs = 1,
    ckpt::CheckpointStore *ckpt_store = nullptr,
    const std::string &farm_tag = {});

} // namespace sample
} // namespace mlc

#endif // MLC_SAMPLE_SWEEP_HH
