/**
 * @file
 * Checkpoint-and-branch sampled design-space sweeps: one warming
 * pass per window for an entire grid of configurations.
 *
 * A sampled sweep over N configurations repeats the same functional
 * warming N times — and warming dominates the schedule (W is 10-30x
 * the measured window). But untimed replay evolves only functional
 * state (tags, dirty bits, reference counters), and configurations
 * that share their L1 organization and a prefix of downstream
 * levels evolve *identical* functional state above the first
 * divergent level: the traffic entering that level during warming
 * depends only on the shared prefix. So the sweep warms once on a
 * truncated "warmer" machine (the shared prefix only), records the
 * traffic crossing its memory boundary, and for each configuration
 * branches: replay the recorded boundary traffic into the divergent
 * levels, restore the prefix snapshot, then run the timed
 * Detail+Measure window as usual. The result is bit-identical to
 * warming every configuration straight-line (golden-tested), at
 * roughly 1/N of the warming cost.
 *
 * The canonical L2-size sweep shares *zero* downstream levels (the
 * L2 itself differs), so the snapshot covers just the L1s and the
 * boundary traffic is the L1 miss stream — still the bulk of the
 * warming work avoided, since the warmer replays W references once
 * while each configuration replays only the recorded misses.
 *
 * See DESIGN.md section 5e for the full compatibility rule and the
 * bit-exactness argument.
 */

#ifndef MLC_SAMPLE_SWEEP_HH
#define MLC_SAMPLE_SWEEP_HH

#include <cstdint>
#include <vector>

#include "sample/engine.hh"
#include "stats/streaming_stats.hh"

namespace mlc {
namespace sample {

/** What runSweepCheckpointed() produces. */
struct SweepResult
{
    /** One SampledResult per input configuration, in input order —
     *  bit-identical to runSampled() on that configuration with the
     *  sweep's resolved options. */
    std::vector<SampledResult> perConfig;
    /** False when the configurations were not warm-compatible and
     *  the sweep fell back to independent straight-line runs. */
    bool checkpointed = false;
    /** Downstream levels covered by the shared snapshot (0 for the
     *  canonical L2 sweep: only the L1s are shared). */
    std::size_t prefixLevels = 0;
};

/**
 * Sample every configuration in @p configs over @p refs with one
 * shared warming pass per window.
 *
 * Requirements for the checkpointed path: all configurations
 * warm-compatible with configs[0] (same split/L1 organization, no
 * solo co-simulation — see hier::warmCompatible()). Otherwise the
 * sweep silently falls back to independent runSampled() calls and
 * reports checkpointed = false.
 *
 * Adaptive warming (opts.adaptiveWarm) is resolved *once* for the
 * whole sweep — against the configuration with the largest deepest
 * cache, so the warm length covers every machine in the grid — and
 * the resolved fixed length is used for all configurations; per-
 * config derivation would give each machine a different schedule
 * and break both window alignment and the shared warming.
 *
 * Determinism: bit-identical for any @p jobs (slot-indexed results,
 * per-window barrier, fixed-order reduction), and bit-identical to
 * straight-line runSampled() per configuration.
 *
 * @param jobs configurations branched concurrently per window.
 * @param mapped see runSampled(); enables lazy range validation.
 */
SweepResult runSweepCheckpointed(
    const std::vector<hier::HierarchyParams> &configs,
    trace::RefSpan refs, const SampledOptions &opts,
    std::size_t jobs = 1,
    const trace::MappedBinaryTrace *mapped = nullptr);

/** What runPaired() produces. */
struct PairedResult
{
    SampledResult a;
    SampledResult b;
    /** Per-window CPI pairs (covariance, correlation, delta). */
    stats::PairedStats pairs;
    /** Student-t interval on mean per-window CPI(b) - CPI(a). The
     *  half-width shrinks by the (typically large) window-to-window
     *  correlation the two runs share, so a paired comparison
     *  resolves differences far smaller than either absolute
     *  interval could. */
    stats::ConfidenceInterval deltaInterval{};
    std::uint64_t windowsPaired = 0;
};

/**
 * Matched-pair comparison of two configurations: one shared
 * SampleSchedule, both machines measured over the *same* windows
 * via the checkpointed sweep, and a confidence interval on the
 * per-window CPI difference. Adaptive stopping is disabled (both
 * runs must cover the full schedule so windows align one-to-one).
 */
PairedResult runPaired(const hier::HierarchyParams &a,
                       const hier::HierarchyParams &b,
                       trace::RefSpan refs,
                       const SampledOptions &opts,
                       std::size_t jobs = 1,
                       const trace::MappedBinaryTrace *mapped =
                           nullptr);

/**
 * The Section 4 design-space grid priced with checkpointed sampled
 * sweeps: every (size, cycle) cell holds the suite-mean sampled
 * relative execution time of base.withL2(size, cycle), exactly as
 * sample::buildGrid() — but all cells of a trace share each
 * window's warming pass instead of repeating it per cell.
 * Deterministic for any @p jobs.
 */
expt::DesignSpaceGrid buildGridCheckpointed(
    const hier::HierarchyParams &base,
    const std::vector<std::uint64_t> &sizes,
    const std::vector<std::uint32_t> &cycles,
    const expt::TraceStore &store, const SampledOptions &opts,
    std::size_t jobs = 1);

} // namespace sample
} // namespace mlc

#endif // MLC_SAMPLE_SWEEP_HH
