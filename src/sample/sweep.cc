#include "sample/sweep.hh"

#include <algorithm>
#include <memory>

#include "trace/binary.hh"
#include "util/logging.hh"
#include "util/snapshot_arena.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace sample {

namespace {

/**
 * Resolve the sweep-wide options: adaptive warming is derived once,
 * against the configuration with the largest deepest cache (its
 * warm requirement dominates the grid's), and then pinned as a
 * fixed length so every configuration gets the same schedule.
 */
SampledOptions
resolveSweepOptions(const std::vector<hier::HierarchyParams> &configs,
                    trace::RefSpan refs, const SampledOptions &opts)
{
    SampledOptions resolved = opts;
    if (!opts.adaptiveWarm)
        return resolved;
    const hier::HierarchyParams *largest = &configs.front();
    auto deepestBytes = [](const hier::HierarchyParams &p) {
        return p.levels.empty() ? p.l1d.geometry.sizeBytes
                                : p.levels.back().geometry.sizeBytes;
    };
    for (const hier::HierarchyParams &p : configs)
        if (deepestBytes(p) > deepestBytes(*largest))
            largest = &p;
    resolved.functionalWarmRefs =
        deriveFunctionalWarmRefs(refs, *largest, opts);
    resolved.adaptiveWarm = false;
    return resolved;
}

/** The segments of one schedule window, in schedule order. */
struct Window
{
    Segment warm{SegmentKind::Warm, 0, 0};
    Segment detail{SegmentKind::Detail, 0, 0};
    Segment measure{SegmentKind::Measure, 0, 0};
};

trace::RefSpan
spanOf(trace::RefSpan refs, const Segment &seg)
{
    return refs.dropFirst(seg.begin).first(seg.len);
}

} // namespace

SweepResult
runSweepCheckpointed(const std::vector<hier::HierarchyParams> &configs,
                     trace::RefSpan refs, const SampledOptions &opts,
                     std::size_t jobs,
                     const trace::MappedBinaryTrace *mapped)
{
    if (configs.empty())
        mlc_panic("runSweepCheckpointed: no configurations");

    const SampledOptions resolved =
        resolveSweepOptions(configs, refs, opts);

    SweepResult sweep;

    bool compatible = configs.size() > 1;
    for (std::size_t c = 1; compatible && c < configs.size(); ++c)
        compatible = hier::warmCompatible(configs[0], configs[c]);

    if (!compatible) {
        // Straight-line fallback: nothing shared, so just run every
        // configuration independently (still slot-indexed for
        // jobs-count determinism).
        sweep.perConfig.resize(configs.size());
        parallelFor(jobs, configs.size(), [&](std::size_t c) {
            sweep.perConfig[c] =
                runSampled(configs[c], refs, resolved, mapped);
            sweep.perConfig[c].adaptiveWarmUsed = opts.adaptiveWarm;
        });
        return sweep;
    }

    std::size_t prefix = configs[0].levels.size();
    for (std::size_t c = 1; c < configs.size(); ++c)
        prefix = std::min(
            prefix, hier::sharedFunctionalPrefix(configs[0],
                                                 configs[c]));
    sweep.checkpointed = true;
    sweep.prefixLevels = prefix;

    // The warmer: configs[0] cut down to the shared prefix. Its
    // "main memory" boundary is then exactly the entry into the
    // first divergent level of every full configuration, and the
    // per-level tag seeds (positional) line up with the prefix.
    hier::HierarchyParams warmer_params = configs[0];
    warmer_params.levels.resize(prefix);
    warmer_params.busWidthWords.resize(prefix + 1);
    warmer_params.measureSolo = false;
    hier::HierarchySimulator warmer(warmer_params);

    SampleScheduler sched(refs.size, resolved);

    std::vector<std::unique_ptr<hier::HierarchySimulator>> sims;
    sims.reserve(configs.size());
    for (const hier::HierarchyParams &p : configs)
        sims.push_back(
            std::make_unique<hier::HierarchySimulator>(p));

    sweep.perConfig.resize(configs.size());
    for (SampledResult &r : sweep.perConfig) {
        r.refsTotal = refs.size;
        r.warmRefsPerWindow = sched.plan().functionalWarmRefs;
        r.adaptiveWarmUsed = opts.adaptiveWarm;
    }

    // Configurations still sampling (adaptive stopping retires them
    // one by one; the sweep ends when none are left).
    std::vector<std::uint8_t> active(configs.size(), 1);
    auto anyActive = [&] {
        return std::any_of(active.begin(), active.end(),
                           [](std::uint8_t a) { return a != 0; });
    };

    SnapshotArena arena;
    hier::WarmSnapshot snap;
    std::vector<hier::BoundaryOp> ops;

    Window win;
    for (const Segment &seg : sched.segments()) {
        switch (seg.kind) {
        case SegmentKind::Skip:
            continue; // pages stay untouched (streaming skip)
        case SegmentKind::Warm:
            win.warm = seg;
            continue;
        case SegmentKind::Detail:
            win.detail = seg;
            continue;
        case SegmentKind::Measure:
            win.measure = seg;
            break;
        }

        if (mapped) {
            // Validate exactly what this window replays, just
            // before replaying it (lazy traces only).
            if (win.warm.len)
                mapped->validateRange(win.warm.begin, win.warm.len);
            if (win.detail.len)
                mapped->validateRange(win.detail.begin,
                                      win.detail.len);
            mapped->validateRange(win.measure.begin,
                                  win.measure.len);
        }

        const trace::RefSpan warm_span = spanOf(refs, win.warm);
        const trace::RefSpan detail_span = spanOf(refs, win.detail);
        const trace::RefSpan measure_span =
            spanOf(refs, win.measure);

        // One warming pass for everyone: replay the warm segment on
        // the truncated machine, recording the traffic that crosses
        // its memory boundary.
        ops.clear();
        warmer.setBoundaryRecorder(&ops);
        warmer.runFunctional(warm_span);
        warmer.setBoundaryRecorder(nullptr);
        arena.reset();
        warmer.captureWarmState(arena, snap, prefix);

        // Branch: each configuration rebuilds this window's warm
        // state (boundary replay first — it touches only the
        // divergent levels — then the prefix restore) and runs its
        // own timed Detail+Measure. Slot-indexed per-config state
        // keeps any jobs count bit-identical.
        parallelFor(jobs, configs.size(), [&](std::size_t c) {
            if (!active[c])
                return;
            hier::HierarchySimulator &sim = *sims[c];
            SampledResult &out = sweep.perConfig[c];
            sim.replayBoundary(prefix, ops);
            sim.restoreWarmState(arena, snap);
            out.refsFunctionalWarmed += win.warm.len;
            if (win.detail.len) {
                sim.run(detail_span);
                out.refsDetailWarmed += win.detail.len;
            }
            detail::measureWindow(sim, measure_span, resolved, out);
            if (out.stoppedEarly)
                active[c] = 0;
        });

        if (!anyActive())
            break;

        // Keep the warmer functionally in step with a straight-line
        // run: the references the configurations just replayed
        // timed must evolve the warmer's tags too, or the next
        // window's shared warm state would drift.
        warmer.runFunctional(detail_span);
        warmer.runFunctional(measure_span);
        win = Window{};
    }

    for (std::size_t c = 0; c < configs.size(); ++c)
        detail::finishSampled(*sims[c], resolved,
                              sweep.perConfig[c]);
    return sweep;
}

PairedResult
runPaired(const hier::HierarchyParams &a,
          const hier::HierarchyParams &b, trace::RefSpan refs,
          const SampledOptions &opts, std::size_t jobs,
          const trace::MappedBinaryTrace *mapped)
{
    // Window alignment needs both machines to cover the identical
    // schedule, so the pair always runs to completion; adaptive
    // stopping would retire the faster-converging machine early.
    SampledOptions full = opts;
    full.targetRelHalfWidth = 0.0;

    SweepResult sweep = runSweepCheckpointed({a, b}, refs, full,
                                             jobs, mapped);

    PairedResult out;
    out.a = std::move(sweep.perConfig[0]);
    out.b = std::move(sweep.perConfig[1]);

    // Windows are placed by reference index, and a window's
    // instruction count is a property of the trace alone — so a
    // window yields a CPI sample on machine A iff it does on B and
    // the two vectors align index-for-index.
    if (out.a.windowCpiValues.size() != out.b.windowCpiValues.size())
        mlc_panic("runPaired: misaligned window CPI samples (",
                  out.a.windowCpiValues.size(), " vs ",
                  out.b.windowCpiValues.size(), ")");
    for (std::size_t i = 0; i < out.a.windowCpiValues.size(); ++i)
        out.pairs.push(out.a.windowCpiValues[i],
                       out.b.windowCpiValues[i]);
    out.windowsPaired = out.pairs.count();
    out.deltaInterval = out.pairs.deltaInterval(opts.confidence);
    return out;
}

expt::DesignSpaceGrid
buildGridCheckpointed(const hier::HierarchyParams &base,
                      const std::vector<std::uint64_t> &sizes,
                      const std::vector<std::uint32_t> &cycles,
                      const expt::TraceStore &store,
                      const SampledOptions &opts, std::size_t jobs)
{
    if (store.size() == 0)
        mlc_panic("buildGridCheckpointed: empty trace store");

    // Row-major (size, cycle) flattening, matching
    // DesignSpaceGrid's own layout.
    std::vector<hier::HierarchyParams> configs;
    configs.reserve(sizes.size() * cycles.size());
    for (std::uint64_t size : sizes)
        for (std::uint32_t cycle : cycles)
            configs.push_back(base.withL2(size, cycle));

    // Traces run serially — each trace's sweep already spreads its
    // configurations over the jobs — and the accumulation order is
    // fixed, so the grid is bit-identical for any jobs count.
    std::vector<double> acc(configs.size(), 0.0);
    for (std::size_t t = 0; t < store.size(); ++t) {
        const SweepResult sweep = runSweepCheckpointed(
            configs, store.span(t), opts, jobs);
        for (std::size_t c = 0; c < configs.size(); ++c)
            acc[c] += sweep.perConfig[c].estRelExecTime;
    }

    expt::DesignSpaceGrid grid(sizes, cycles);
    const double n = static_cast<double>(store.size());
    for (std::size_t si = 0; si < sizes.size(); ++si)
        for (std::size_t ci = 0; ci < cycles.size(); ++ci)
            grid.set(si, ci, acc[si * cycles.size() + ci] / n);
    return grid;
}

} // namespace sample
} // namespace mlc
