#include "sample/sweep.hh"

#include <algorithm>
#include <memory>
#include <string>

#include "trace/binary.hh"
#include "util/logging.hh"
#include "util/snapshot_arena.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace sample {

namespace {

/**
 * Resolve the sweep-wide options: adaptive warming is derived once,
 * against the configuration with the largest deepest cache (its
 * warm requirement dominates the grid's), and then pinned as a
 * fixed length so every configuration gets the same schedule.
 */
SampledOptions
resolveSweepOptions(const std::vector<hier::HierarchyParams> &configs,
                    trace::RefSpan refs, const SampledOptions &opts)
{
    SampledOptions resolved = opts;
    if (!opts.adaptiveWarm)
        return resolved;
    const hier::HierarchyParams *largest = &configs.front();
    auto deepestBytes = [](const hier::HierarchyParams &p) {
        return p.levels.empty() ? p.l1d.geometry.sizeBytes
                                : p.levels.back().geometry.sizeBytes;
    };
    for (const hier::HierarchyParams &p : configs)
        if (deepestBytes(p) > deepestBytes(*largest))
            largest = &p;
    resolved.functionalWarmRefs =
        deriveFunctionalWarmRefs(refs, *largest, opts);
    resolved.adaptiveWarm = false;
    return resolved;
}

/** The segments of one schedule window, in schedule order. */
struct Window
{
    Segment warm{SegmentKind::Warm, 0, 0};
    Segment detail{SegmentKind::Detail, 0, 0};
    Segment measure{SegmentKind::Measure, 0, 0};
};

trace::RefSpan
spanOf(trace::RefSpan refs, const Segment &seg)
{
    return refs.dropFirst(seg.begin).first(seg.len);
}

/** The functionallyEqual() field set of one cache, canonicalized. */
std::string
cacheKeyPart(const cache::CacheParams &p)
{
    std::string s = std::to_string(p.geometry.sizeBytes);
    s += "." + std::to_string(p.geometry.blockBytes);
    s += "." + std::to_string(p.geometry.assoc);
    s += "." + std::to_string(p.fetchBytes);
    s += "." + std::to_string(static_cast<int>(p.writePolicy));
    s += std::to_string(static_cast<int>(p.allocPolicy));
    s += std::to_string(static_cast<int>(p.replPolicy));
    s += std::to_string(static_cast<int>(p.downstreamWriteMiss));
    s += p.prefetchNextBlock ? "p" : "n";
    return s;
}

/** The warmer machine: configs[0] cut to the shared prefix. Its
 *  "main memory" boundary is then exactly the entry into the first
 *  divergent level of every full configuration, and the per-level
 *  tag seeds (positional) line up with the prefix. */
hier::HierarchyParams
warmerParamsFor(const hier::HierarchyParams &first,
                std::size_t prefix)
{
    hier::HierarchyParams warmer = first;
    warmer.levels.resize(prefix);
    warmer.busWidthWords.resize(prefix + 1);
    warmer.measureSolo = false;
    return warmer;
}

} // namespace

std::string
scheduleKeyFor(const SamplePlan &plan, SampleMode mode,
               std::uint64_t seed)
{
    std::string k = "v1;mode=";
    k += mode == SampleMode::Systematic ? "sys" : "rand";
    k += ";seed=" + std::to_string(seed);
    k += ";refs=" + std::to_string(plan.totalRefs);
    k += ";period=" + std::to_string(plan.period);
    k += ";measure=" + std::to_string(plan.measureRefs);
    k += ";detail=" + std::to_string(plan.detailWarmRefs);
    k += ";warm=" + std::to_string(plan.functionalWarmRefs);
    k += ";windows=" + std::to_string(plan.windows);
    return k;
}

std::string
warmerConfigKey(const hier::HierarchyParams &params,
                std::size_t prefix_levels)
{
    std::string s = params.splitL1 ? "split" : "unified";
    if (params.splitL1)
        s += ";i=" + cacheKeyPart(params.l1i);
    s += ";d=" + cacheKeyPart(params.l1d);
    for (std::size_t i = 0; i < prefix_levels; ++i)
        s += ";L" + std::to_string(i + 2) + "=" +
             cacheKeyPart(params.levels[i]);
    return s;
}

SweepResult
runSweepCheckpointed(const std::vector<hier::HierarchyParams> &configs,
                     trace::RefSpan refs, const SampledOptions &opts,
                     std::size_t jobs,
                     const trace::MappedBinaryTrace *mapped,
                     const CheckpointPolicy &policy)
{
    if (configs.empty())
        mlc_panic("runSweepCheckpointed: no configurations");

    const SampledOptions resolved =
        resolveSweepOptions(configs, refs, opts);

    SweepResult sweep;

    // Compatibility: a multi-config family must be pairwise warm-
    // compatible; a lone configuration has nothing to share in-
    // process, so it only takes the checkpointed path when a store
    // makes the warm pass worth persisting.
    bool compatible;
    std::size_t first_incompatible = 0;
    if (configs.size() > 1) {
        compatible = true;
        for (std::size_t c = 1; c < configs.size(); ++c)
            if (!hier::warmCompatible(configs[0], configs[c])) {
                compatible = false;
                first_incompatible = c;
                break;
            }
    } else {
        compatible = policy.store != nullptr &&
                     hier::warmCompatible(configs[0], configs[0]);
    }

    if (!compatible) {
        if (configs.size() > 1) {
            // Once-per-sweep diagnosis: a sweep the caller expected
            // to share warming is silently N times slower otherwise.
            sweep.checkpointFallback = "incompatible-geometry";
            warn("runSweepCheckpointed: straight-line fallback: "
                 "config ",
                 first_incompatible,
                 " is not warm-compatible with config 0 "
                 "(split-L1 shape, L1 organization or solo "
                 "co-simulation differ)");
        }
        // Straight-line fallback: nothing shared, so just run every
        // configuration independently (still slot-indexed for
        // jobs-count determinism).
        sweep.perConfig.resize(configs.size());
        parallelFor(jobs, configs.size(), [&](std::size_t c) {
            sweep.perConfig[c] =
                runSampled(configs[c], refs, resolved, mapped);
            sweep.perConfig[c].adaptiveWarmUsed = opts.adaptiveWarm;
        });
        return sweep;
    }

    std::size_t prefix = configs[0].levels.size();
    for (std::size_t c = 1; c < configs.size(); ++c)
        prefix = std::min(
            prefix, hier::sharedFunctionalPrefix(configs[0],
                                                 configs[c]));
    sweep.checkpointed = true;
    sweep.prefixLevels = prefix;

    const hier::HierarchyParams warmer_params =
        warmerParamsFor(configs[0], prefix);

    SampleScheduler sched(refs.size, resolved);

    // Probe the checkpoint farm. A hit replaces the warmer machine
    // entirely; a miss (with buildIfMissing) tees the windows this
    // sweep warms anyway into a new farm entry.
    std::unique_ptr<ckpt::CheckpointReader> reader;
    std::unique_ptr<ckpt::CheckpointWriter> writer;
    ckpt::CheckpointKey key;
    if (policy.store) {
        key.traceId = policy.traceId;
        key.scheduleKey =
            scheduleKeyFor(sched.plan(), resolved.mode,
                           resolved.seed);
        key.configHash = warmerConfigKey(warmer_params, prefix);
        const std::uint64_t fingerprint =
            ckpt::traceFingerprint(refs.data, refs.size);
        ckpt::MissReason reason = ckpt::MissReason::None;
        std::string miss_detail;
        reader = policy.store->tryOpen(key, refs.size, fingerprint,
                                       &reason, &miss_detail);
        if (reader &&
            reader->meta().windows != sched.plan().windows) {
            // scheduleKey encodes the window count, so a verified
            // file disagreeing with its own key is farm corruption.
            reason = ckpt::MissReason::Corrupt;
            miss_detail = policy.store->pathFor(key) +
                          ": window count disagrees with its "
                          "schedule key";
            reader.reset();
        }
        if (reader) {
            sweep.fromCheckpointFile = true;
        } else {
            sweep.checkpointFallback = ckpt::missReasonName(reason);
            inform("runSweepCheckpointed: checkpoint farm miss "
                   "for '",
                   policy.traceId, "' (",
                   ckpt::missReasonName(reason), "): ", miss_detail,
                   policy.buildIfMissing
                       ? "; re-warming and building a farm entry"
                       : "; re-warming");
            if (policy.buildIfMissing)
                writer = std::make_unique<ckpt::CheckpointWriter>(
                    key, refs.size, fingerprint);
        }
    }

    std::unique_ptr<hier::HierarchySimulator> warmer;
    if (!reader)
        warmer = std::make_unique<hier::HierarchySimulator>(
            warmer_params);

    std::vector<std::unique_ptr<hier::HierarchySimulator>> sims;
    sims.reserve(configs.size());
    for (const hier::HierarchyParams &p : configs)
        sims.push_back(
            std::make_unique<hier::HierarchySimulator>(p));

    sweep.perConfig.resize(configs.size());
    for (SampledResult &r : sweep.perConfig) {
        r.refsTotal = refs.size;
        r.warmRefsPerWindow = sched.plan().functionalWarmRefs;
        r.adaptiveWarmUsed = opts.adaptiveWarm;
    }

    // Configurations still sampling (adaptive stopping retires them
    // one by one; the sweep ends when none are left).
    std::vector<std::uint8_t> active(configs.size(), 1);
    auto anyActive = [&] {
        return std::any_of(active.begin(), active.end(),
                           [](std::uint8_t a) { return a != 0; });
    };

    SnapshotArena arena;
    hier::WarmSnapshot snap;
    std::vector<hier::BoundaryOp> ops;
    std::size_t window_idx = 0;

    Window win;
    for (const Segment &seg : sched.segments()) {
        switch (seg.kind) {
        case SegmentKind::Skip:
            continue; // pages stay untouched (streaming skip)
        case SegmentKind::Warm:
            win.warm = seg;
            continue;
        case SegmentKind::Detail:
            win.detail = seg;
            continue;
        case SegmentKind::Measure:
            win.measure = seg;
            break;
        }

        // Adaptive stopping retired everyone: a teeing sweep keeps
        // warming so the published file covers the full schedule
        // (a farm entry must serve any stopping rule), everyone
        // else is done.
        const bool branching = anyActive();
        if (!branching && !writer)
            break;

        if (mapped) {
            // Validate exactly what this window replays, just
            // before replaying it (lazy traces only). With a
            // checkpoint reader the warm segment is never replayed
            // by anything, so its pages are never validated — or
            // touched — at all.
            if (!reader && win.warm.len)
                mapped->validateRange(win.warm.begin, win.warm.len);
            if (branching || !reader) {
                if (win.detail.len)
                    mapped->validateRange(win.detail.begin,
                                          win.detail.len);
                mapped->validateRange(win.measure.begin,
                                      win.measure.len);
            }
        }

        const trace::RefSpan warm_span = spanOf(refs, win.warm);
        const trace::RefSpan detail_span = spanOf(refs, win.detail);
        const trace::RefSpan measure_span =
            spanOf(refs, win.measure);

        if (reader) {
            // Load this window's live-point instead of warming.
            // open() already checksum-verified every record, so a
            // structural decode failure here is a format bug, not
            // bit rot — fail the run, don't risk silent drift.
            if (!reader->loadWindow(window_idx, ops, snap, arena))
                mlc_panic("checkpoint window ", window_idx, " of ",
                          policy.store->pathFor(key),
                          " failed structural decode after "
                          "verification");
            if (snap.prefixLevels != prefix)
                mlc_panic("checkpoint window ", window_idx,
                          " snapshot covers ", snap.prefixLevels,
                          " levels, sweep expects ", prefix);
        } else {
            // One warming pass for everyone: replay the warm
            // segment on the truncated machine, recording the
            // traffic that crosses its memory boundary.
            ops.clear();
            warmer->setBoundaryRecorder(&ops);
            warmer->runFunctional(warm_span);
            warmer->setBoundaryRecorder(nullptr);
            arena.reset();
            warmer->captureWarmState(arena, snap, prefix);
            if (writer)
                writer->addWindow(ops, snap, arena);
        }
        ++window_idx;

        // Branch: each configuration rebuilds this window's warm
        // state (boundary replay first — it touches only the
        // divergent levels — then the prefix restore) and runs its
        // own timed Detail+Measure. Slot-indexed per-config state
        // keeps any jobs count bit-identical.
        if (branching) {
            parallelFor(jobs, configs.size(), [&](std::size_t c) {
                if (!active[c])
                    return;
                hier::HierarchySimulator &sim = *sims[c];
                SampledResult &out = sweep.perConfig[c];
                sim.replayBoundary(prefix, ops);
                sim.restoreWarmState(arena, snap);
                out.refsFunctionalWarmed += win.warm.len;
                if (win.detail.len) {
                    sim.run(detail_span);
                    out.refsDetailWarmed += win.detail.len;
                }
                detail::measureWindow(sim, measure_span, resolved,
                                      out);
                if (out.stoppedEarly)
                    active[c] = 0;
            });
        }

        if (!anyActive() && !writer)
            break;

        // Keep the warmer functionally in step with a straight-line
        // run: the references the configurations just replayed
        // timed must evolve the warmer's tags too, or the next
        // window's shared warm state would drift.
        if (!reader) {
            warmer->runFunctional(detail_span);
            warmer->runFunctional(measure_span);
        }
        win = Window{};
    }

    if (writer) {
        std::string err;
        if (policy.store->publish(*writer, key, &err) != 0)
            sweep.builtCheckpointFile = true;
        else
            warn("runSweepCheckpointed: could not publish "
                 "checkpoint: ",
                 err);
    }

    for (std::size_t c = 0; c < configs.size(); ++c)
        detail::finishSampled(*sims[c], resolved,
                              sweep.perConfig[c]);
    return sweep;
}

FarmBuildResult
buildCheckpointFarm(const std::vector<hier::HierarchyParams> &configs,
                    trace::RefSpan refs, const SampledOptions &opts,
                    ckpt::CheckpointStore &store,
                    const std::string &trace_id,
                    const trace::MappedBinaryTrace *mapped)
{
    if (configs.empty())
        mlc_panic("buildCheckpointFarm: no configurations");

    const SampledOptions resolved =
        resolveSweepOptions(configs, refs, opts);
    for (const hier::HierarchyParams &p : configs)
        if (!hier::warmCompatible(configs[0], p))
            mlc_panic("buildCheckpointFarm: configurations are "
                      "not warm-compatible; nothing to persist");

    std::size_t prefix = configs[0].levels.size();
    for (std::size_t c = 1; c < configs.size(); ++c)
        prefix = std::min(
            prefix, hier::sharedFunctionalPrefix(configs[0],
                                                 configs[c]));
    const hier::HierarchyParams warmer_params =
        warmerParamsFor(configs[0], prefix);

    SampleScheduler sched(refs.size, resolved);
    ckpt::CheckpointKey key;
    key.traceId = trace_id;
    key.scheduleKey =
        scheduleKeyFor(sched.plan(), resolved.mode, resolved.seed);
    key.configHash = warmerConfigKey(warmer_params, prefix);
    const std::uint64_t fingerprint =
        ckpt::traceFingerprint(refs.data, refs.size);

    FarmBuildResult out;
    out.path = store.pathFor(key);
    out.windows = sched.plan().windows;
    if (auto existing = store.tryOpen(key, refs.size, fingerprint,
                                      nullptr, nullptr)) {
        out.fileBytes = existing->meta().fileBytes;
        return out;
    }

    ckpt::CheckpointWriter writer(key, refs.size, fingerprint);
    hier::HierarchySimulator warmer(warmer_params);
    SnapshotArena arena;
    hier::WarmSnapshot snap;
    std::vector<hier::BoundaryOp> ops;

    Window win;
    for (const Segment &seg : sched.segments()) {
        switch (seg.kind) {
        case SegmentKind::Skip:
            continue;
        case SegmentKind::Warm:
            win.warm = seg;
            continue;
        case SegmentKind::Detail:
            win.detail = seg;
            continue;
        case SegmentKind::Measure:
            win.measure = seg;
            break;
        }

        if (mapped) {
            if (win.warm.len)
                mapped->validateRange(win.warm.begin, win.warm.len);
            if (win.detail.len)
                mapped->validateRange(win.detail.begin,
                                      win.detail.len);
            mapped->validateRange(win.measure.begin,
                                  win.measure.len);
        }

        ops.clear();
        warmer.setBoundaryRecorder(&ops);
        warmer.runFunctional(spanOf(refs, win.warm));
        warmer.setBoundaryRecorder(nullptr);
        arena.reset();
        warmer.captureWarmState(arena, snap, prefix);
        writer.addWindow(ops, snap, arena);

        // The branch configurations replay Detail+Measure timed;
        // the offline builder only needs the warmer to see the
        // same references untimed so successive windows line up.
        warmer.runFunctional(spanOf(refs, win.detail));
        warmer.runFunctional(spanOf(refs, win.measure));
        win = Window{};
    }

    std::string err;
    out.fileBytes = store.publish(writer, key, &err);
    if (out.fileBytes == 0)
        mlc_fatal("buildCheckpointFarm: ", err);
    out.built = true;
    return out;
}

PairedResult
runPaired(const hier::HierarchyParams &a,
          const hier::HierarchyParams &b, trace::RefSpan refs,
          const SampledOptions &opts, std::size_t jobs,
          const trace::MappedBinaryTrace *mapped)
{
    // Window alignment needs both machines to cover the identical
    // schedule, so the pair always runs to completion; adaptive
    // stopping would retire the faster-converging machine early.
    SampledOptions full = opts;
    full.targetRelHalfWidth = 0.0;

    SweepResult sweep = runSweepCheckpointed({a, b}, refs, full,
                                             jobs, mapped);

    PairedResult out;
    out.a = std::move(sweep.perConfig[0]);
    out.b = std::move(sweep.perConfig[1]);

    // Windows are placed by reference index, and a window's
    // instruction count is a property of the trace alone — so a
    // window yields a CPI sample on machine A iff it does on B and
    // the two vectors align index-for-index.
    if (out.a.windowCpiValues.size() != out.b.windowCpiValues.size())
        mlc_panic("runPaired: misaligned window CPI samples (",
                  out.a.windowCpiValues.size(), " vs ",
                  out.b.windowCpiValues.size(), ")");
    for (std::size_t i = 0; i < out.a.windowCpiValues.size(); ++i)
        out.pairs.push(out.a.windowCpiValues[i],
                       out.b.windowCpiValues[i]);
    out.windowsPaired = out.pairs.count();
    out.deltaInterval = out.pairs.deltaInterval(opts.confidence);
    return out;
}

expt::DesignSpaceGrid
buildGridCheckpointed(const hier::HierarchyParams &base,
                      const std::vector<std::uint64_t> &sizes,
                      const std::vector<std::uint32_t> &cycles,
                      const expt::TraceStore &store,
                      const SampledOptions &opts, std::size_t jobs,
                      ckpt::CheckpointStore *ckpt_store,
                      const std::string &farm_tag)
{
    if (store.size() == 0)
        mlc_panic("buildGridCheckpointed: empty trace store");

    // Row-major (size, cycle) flattening, matching
    // DesignSpaceGrid's own layout.
    std::vector<hier::HierarchyParams> configs;
    configs.reserve(sizes.size() * cycles.size());
    for (std::uint64_t size : sizes)
        for (std::uint32_t cycle : cycles)
            configs.push_back(base.withL2(size, cycle));

    // Traces run serially — each trace's sweep already spreads its
    // configurations over the jobs — and the accumulation order is
    // fixed, so the grid is bit-identical for any jobs count.
    std::vector<double> acc(configs.size(), 0.0);
    for (std::size_t t = 0; t < store.size(); ++t) {
        CheckpointPolicy policy;
        if (ckpt_store) {
            policy.store = ckpt_store;
            const std::string &name = store.specs()[t].name;
            policy.traceId =
                farm_tag.empty() ? name : farm_tag + "/" + name;
        }
        const SweepResult sweep = runSweepCheckpointed(
            configs, store.span(t), opts, jobs, nullptr, policy);
        for (std::size_t c = 0; c < configs.size(); ++c)
            acc[c] += sweep.perConfig[c].estRelExecTime;
    }

    expt::DesignSpaceGrid grid(sizes, cycles);
    const double n = static_cast<double>(store.size());
    for (std::size_t si = 0; si < sizes.size(); ++si)
        for (std::size_t ci = 0; ci < cycles.size(); ++ci)
            grid.set(si, ci, acc[si * cycles.size() + ci] / n);
    return grid;
}

} // namespace sample
} // namespace mlc
