#include "sample/engine.hh"

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace sample {

SampledResult
runSampled(const hier::HierarchyParams &params, trace::RefSpan refs,
           const SampledOptions &opts)
{
    SampleScheduler sched(refs.size, opts);
    hier::HierarchySimulator sim(params);

    SampledResult out;
    out.refsTotal = refs.size;

    const bool adaptive = opts.targetRelHalfWidth > 0.0;
    for (const Segment &seg : sched.segments()) {
        const trace::RefSpan span =
            refs.dropFirst(seg.begin).first(seg.len);
        switch (seg.kind) {
        case SegmentKind::Skip:
            out.refsSkipped += seg.len;
            break;
        case SegmentKind::Warm:
            sim.runFunctional(span);
            out.refsFunctionalWarmed += seg.len;
            break;
        case SegmentKind::Detail:
            sim.run(span);
            out.refsDetailWarmed += seg.len;
            break;
        case SegmentKind::Measure: {
            const Tick ticks0 = sim.now();
            const std::uint64_t instr0 = sim.instructionCount();
            sim.run(span);
            out.refsMeasured += seg.len;
            const std::uint64_t instr =
                sim.instructionCount() - instr0;
            // A window with no instruction fetches has no CPI (it
            // cannot happen with the suite generators, but a
            // pathological trace must not divide by zero).
            if (instr > 0) {
                const Tick dticks = sim.now() - ticks0;
                const double cycles =
                    static_cast<double>(dticks) /
                    static_cast<double>(sim.cpuCycleTicks());
                out.windowCpi.push(cycles /
                                   static_cast<double>(instr));
                out.cyclesMeasured += divCeil(
                    dticks, sim.cpuCycleTicks());
                out.instructionsMeasured += instr;
            }
            if (adaptive &&
                out.windowCpi.count() >= opts.minWindows) {
                const auto ci =
                    out.windowCpi.interval(opts.confidence);
                if (ci.relativeHalfWidth() <=
                    opts.targetRelHalfWidth) {
                    out.stoppedEarly = true;
                }
            }
            break;
        }
        }
        if (out.stoppedEarly)
            break;
    }
    // An early stop leaves the tail of the schedule untouched; it
    // is skipped work as far as accounting goes.
    out.refsSkipped = out.refsTotal - out.refsMeasured -
                      out.refsDetailWarmed -
                      out.refsFunctionalWarmed;

    if (out.windowCpi.count() == 0)
        mlc_panic("sample: no window produced a CPI sample");
    // Ratio estimate (see SampledResult::estCpi); the interval is
    // re-centred on it, keeping the window-spread half-width — the
    // usual large-sample approximation for a ratio estimator whose
    // denominators are near-equal.
    out.estCpi = static_cast<double>(out.cyclesMeasured) /
                 static_cast<double>(out.instructionsMeasured);
    out.cpiInterval = out.windowCpi.interval(opts.confidence);
    out.cpiInterval.mean = out.estCpi;
    out.functional = sim.results();
    // Ideal CPI from the replayed subset's instruction/store mix;
    // see SimResults for the normalization this mirrors.
    const double ideal_cpi =
        out.functional.instructions == 0
            ? 1.0
            : static_cast<double>(out.functional.idealCycles) /
                  static_cast<double>(out.functional.instructions);
    out.estRelExecTime = ideal_cpi == 0.0 ? 0.0
                                          : out.estCpi / ideal_cpi;
    return out;
}

SampledSuiteResults
runSuiteSampled(const hier::HierarchyParams &params,
                const expt::TraceStore &store,
                const SampledOptions &opts, std::size_t jobs)
{
    if (store.size() == 0)
        mlc_panic("runSuiteSampled: empty trace store");

    // Slot indexing plus the fixed trace-order reduction below
    // keeps jobs=1 and jobs=N bit-identical (the expt::runSuite
    // contract).
    std::vector<SampledResult> per_trace(store.size());
    parallelFor(jobs, store.size(), [&](std::size_t t) {
        per_trace[t] = runSampled(params, store.span(t), opts);
    });

    SampledSuiteResults suite;
    for (const SampledResult &r : per_trace) {
        suite.relExecTime += r.estRelExecTime;
        suite.cpi += r.estCpi;
        suite.maxRelHalfWidth =
            std::max(suite.maxRelHalfWidth,
                     r.cpiInterval.relativeHalfWidth());
        ++suite.traces;
    }
    const double n = static_cast<double>(suite.traces);
    suite.relExecTime /= n;
    suite.cpi /= n;
    suite.perTrace = std::move(per_trace);
    return suite;
}

expt::DesignSpaceGrid
buildGrid(const hier::HierarchyParams &base,
          const std::vector<std::uint64_t> &sizes,
          const std::vector<std::uint32_t> &cycles,
          const expt::TraceStore &store, const SampledOptions &opts,
          std::size_t jobs)
{
    // Cells parallelize; each cell's suite run stays serial, so
    // every cell value is independent of the jobs count and the
    // grid inherits parallelBuildGrid's determinism.
    return expt::parallelBuildGrid(
        sizes, cycles,
        [&](std::uint64_t size, std::uint32_t cycle) {
            return runSuiteSampled(base.withL2(size, cycle), store,
                                   opts)
                .relExecTime;
        },
        jobs);
}

} // namespace sample
} // namespace mlc
