#include "sample/engine.hh"

#include <algorithm>

#include "trace/binary.hh"
#include "trace/stack_distance.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace mlc {
namespace sample {

namespace detail {

void
finishSampled(hier::HierarchySimulator &sim,
              const SampledOptions &opts, SampledResult &out)
{
    // An early stop leaves the tail of the schedule untouched; it
    // is skipped work as far as accounting goes.
    out.refsSkipped = out.refsTotal - out.refsMeasured -
                      out.refsDetailWarmed -
                      out.refsFunctionalWarmed;

    if (out.windowCpi.count() == 0)
        mlc_panic("sample: no window produced a CPI sample");
    // Ratio estimate (see SampledResult::estCpi); the interval is
    // re-centred on it, keeping the window-spread half-width — the
    // usual large-sample approximation for a ratio estimator whose
    // denominators are near-equal.
    out.estCpi = static_cast<double>(out.cyclesMeasured) /
                 static_cast<double>(out.instructionsMeasured);
    out.cpiInterval = out.windowCpi.interval(opts.confidence);
    out.cpiInterval.mean = out.estCpi;
    out.functional = sim.results();
    // Ideal CPI from the replayed subset's instruction/store mix;
    // see SimResults for the normalization this mirrors.
    const double ideal_cpi =
        out.functional.instructions == 0
            ? 1.0
            : static_cast<double>(out.functional.idealCycles) /
                  static_cast<double>(out.functional.instructions);
    out.estRelExecTime = ideal_cpi == 0.0 ? 0.0
                                          : out.estCpi / ideal_cpi;
}

} // namespace detail

std::uint64_t
deriveFunctionalWarmRefs(trace::RefSpan refs,
                         const hier::HierarchyParams &params,
                         const SampledOptions &opts)
{
    const cache::CacheParams &deepest =
        params.levels.empty() ? params.l1d : params.levels.back();
    const std::uint32_t block = deepest.geometry.blockBytes;
    const std::uint64_t capacity_blocks =
        deepest.geometry.numBlocks();

    const std::uint64_t hi = refs.size / 2;
    const std::uint64_t lo = std::min(opts.measureRefs, hi);
    const auto clamp = [&](std::uint64_t w) {
        return std::max(lo, std::min(w, hi));
    };

    const std::size_t probe = static_cast<std::size_t>(
        std::min<std::uint64_t>(opts.adaptiveWarmProbeRefs,
                                refs.size));
    trace::StackDistanceAnalyzer analyzer(block);
    std::uint64_t reads = 0;
    for (std::size_t i = 0; i < probe; ++i) {
        const trace::MemRef &ref = refs.data[i];
        if (ref.isRead()) {
            analyzer.access(ref.addr);
            ++reads;
        }
    }
    if (reads == 0 || probe == 0)
        return clamp(opts.functionalWarmRefs);

    const double read_frac = static_cast<double>(reads) /
                             static_cast<double>(probe);
    const double tail_miss = analyzer.missRatio(capacity_blocks);
    if (tail_miss <= 0.0) {
        // The probe's whole footprint fits: the steady-state miss
        // ratio gives no fill rate, so only seeing (roughly) the
        // footprint again rebuilds the state — take the high clamp.
        return hi;
    }
    // Expected reads per fill at the tail is 1/missRatio; cover
    // the capacity about twice over for the deepest cache's sets
    // to shed their pre-Skip staleness.
    const double warm = 2.0 *
                        static_cast<double>(capacity_blocks) /
                        (read_frac * tail_miss);
    if (warm >= static_cast<double>(hi))
        return hi;
    return clamp(static_cast<std::uint64_t>(warm));
}

SampledResult
runSampled(const hier::HierarchyParams &params, trace::RefSpan refs,
           const SampledOptions &opts,
           const trace::MappedBinaryTrace *mapped)
{
    SampledOptions resolved = opts;
    if (opts.adaptiveWarm)
        resolved.functionalWarmRefs =
            deriveFunctionalWarmRefs(refs, params, opts);

    SampleScheduler sched(refs.size, resolved);
    hier::HierarchySimulator sim(params);

    SampledResult out;
    out.refsTotal = refs.size;
    out.warmRefsPerWindow = sched.plan().functionalWarmRefs;
    out.adaptiveWarmUsed = opts.adaptiveWarm;

    for (const Segment &seg : sched.segments()) {
        if (seg.kind == SegmentKind::Skip)
            continue; // pages stay untouched; accounted at the end
        // Under lazy validation only the segments actually replayed
        // are ever scanned (or faulted in).
        if (mapped)
            mapped->validateRange(seg.begin, seg.len);
        const trace::RefSpan span =
            refs.dropFirst(seg.begin).first(seg.len);
        switch (seg.kind) {
        case SegmentKind::Skip:
            break;
        case SegmentKind::Warm:
            sim.runFunctional(span);
            out.refsFunctionalWarmed += seg.len;
            break;
        case SegmentKind::Detail:
            sim.run(span);
            out.refsDetailWarmed += seg.len;
            break;
        case SegmentKind::Measure:
            detail::measureWindow(sim, span, resolved, out);
            break;
        }
        if (out.stoppedEarly)
            break;
    }
    detail::finishSampled(sim, resolved, out);
    return out;
}

SampledSuiteResults
runSuiteSampled(const hier::HierarchyParams &params,
                const expt::TraceStore &store,
                const SampledOptions &opts, std::size_t jobs)
{
    if (store.size() == 0)
        mlc_panic("runSuiteSampled: empty trace store");

    // Slot indexing plus the fixed trace-order reduction below
    // keeps jobs=1 and jobs=N bit-identical (the expt::runSuite
    // contract).
    std::vector<SampledResult> per_trace(store.size());
    parallelFor(jobs, store.size(), [&](std::size_t t) {
        per_trace[t] = runSampled(params, store.span(t), opts);
    });

    SampledSuiteResults suite;
    for (const SampledResult &r : per_trace) {
        suite.relExecTime += r.estRelExecTime;
        suite.cpi += r.estCpi;
        suite.maxRelHalfWidth =
            std::max(suite.maxRelHalfWidth,
                     r.cpiInterval.relativeHalfWidth());
        ++suite.traces;
    }
    const double n = static_cast<double>(suite.traces);
    suite.relExecTime /= n;
    suite.cpi /= n;
    suite.perTrace = std::move(per_trace);
    return suite;
}

expt::DesignSpaceGrid
buildGrid(const hier::HierarchyParams &base,
          const std::vector<std::uint64_t> &sizes,
          const std::vector<std::uint32_t> &cycles,
          const expt::TraceStore &store, const SampledOptions &opts,
          std::size_t jobs)
{
    // Cells parallelize; each cell's suite run stays serial, so
    // every cell value is independent of the jobs count and the
    // grid inherits parallelBuildGrid's determinism.
    return expt::parallelBuildGrid(
        sizes, cycles,
        [&](std::uint64_t size, std::uint32_t cycle) {
            return runSuiteSampled(base.withL2(size, cycle), store,
                                   opts)
                .relExecTime;
        },
        jobs);
}

} // namespace sample
} // namespace mlc
