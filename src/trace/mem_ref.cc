#include "trace/mem_ref.hh"

#include <cstdio>

#include "util/logging.hh"

namespace mlc {
namespace trace {

const char *
refTypeName(RefType type)
{
    switch (type) {
      case RefType::IFetch:
        return "ifetch";
      case RefType::Load:
        return "load";
      case RefType::Store:
        return "store";
    }
    mlc_panic("bad RefType ", static_cast<int>(type));
}

std::string
MemRef::toString() const
{
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%s 0x%llx (%uB, pid %u)",
                  refTypeName(type),
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned>(size),
                  static_cast<unsigned>(pid));
    return buf;
}

} // namespace trace
} // namespace mlc
