#include "trace/synthetic.hh"

#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mlc {
namespace trace {

ParetoDepthSampler::ParetoDepthSampler(double theta, double s0)
    : theta_(theta), s0_(s0)
{
    if (theta <= 0.0)
        mlc_panic("ParetoDepthSampler theta must be positive, got ",
                  theta);
    if (s0 < 1.0)
        mlc_panic("ParetoDepthSampler s0 must be >= 1, got ", s0);
}

std::uint64_t
ParetoDepthSampler::sample(Rng &rng) const
{
    double u = rng.nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double y = s0_ * std::pow(u, -1.0 / theta_);
    // Depth floor(y) - 1 makes P(depth >= d) == tail(d) exactly for
    // all integer d with (d + 1) >= s0.
    if (y >= 0x1.0p62)
        return std::uint64_t{1} << 62;
    const auto depth = static_cast<std::uint64_t>(y);
    return depth == 0 ? 0 : depth - 1;
}

double
ParetoDepthSampler::tail(std::uint64_t d) const
{
    const double x = (static_cast<double>(d) + 1.0) / s0_;
    if (x <= 1.0)
        return 1.0;
    return std::pow(x, -theta_);
}

StackDataGenerator::StackDataGenerator(const DataStreamParams &params,
                                       std::uint64_t seed)
    : params_(params),
      depths_(params.theta, params.localityScale),
      rng_(seed),
      stack_(seed ^ 0x5deece66dULL)
{
    if (!isPowerOfTwo(params_.granuleBytes))
        mlc_panic("data granule size must be a power of two, got ",
                  params_.granuleBytes);
    if (params_.footprintGranules == 0)
        mlc_panic("data footprint must be non-zero");

    // Warm the stack: oldest data deepest, newest on top.
    const std::uint64_t initial =
        std::min(params_.initialFootprintGranules,
                 params_.footprintGranules);
    for (std::uint64_t g = 0; g < initial; ++g)
        stack_.pushFront(g);
    nextGranule_ = initial;
}

Addr
StackDataGenerator::next()
{
    std::uint64_t depth = depths_.sample(rng_);
    std::uint64_t granule;

    if (depth >= stack_.size()) {
        if (stack_.size() < params_.footprintGranules) {
            // Compulsory reference: allocate the next granule
            // sequentially so freshly touched data is spatially
            // clustered, as heap/stack allocation makes it.
            granule = nextGranule_++;
            stack_.pushFront(granule);
        } else {
            // Footprint is capped: fold deep references into the
            // cold three-quarters of the stack so the tail keeps
            // producing far misses without growing memory.
            const std::size_t lo = stack_.size() / 4;
            depth = rng_.nextRange(lo, stack_.size() - 1);
            granule = stack_.removeAt(depth);
            stack_.pushFront(granule);
        }
    } else {
        granule = stack_.removeAt(depth);
        stack_.pushFront(granule);
    }

    const std::uint64_t words = params_.granuleBytes / 4;
    const std::uint64_t word = rng_.nextBounded(words);
    return params_.base + granule * params_.granuleBytes + word * 4;
}

LoopInstructionGenerator::LoopInstructionGenerator(
        const InstStreamParams &params, std::uint64_t seed)
    : params_(params), rng_(seed)
{
    if (params_.numFunctions == 0)
        mlc_panic("instruction model needs at least one function");
    if (params_.meanFunctionLength < 1.0 ||
        params_.meanRunLength < 1.0)
        mlc_panic("instruction model mean lengths must be >= 1");
    const double branch_total = params_.loopBranchProb +
                                params_.callProb + params_.returnProb;
    if (branch_total > 1.0)
        mlc_panic("instruction branch probabilities exceed 1: ",
                  branch_total);

    functions_.reserve(params_.numFunctions);
    Addr entry = params_.base;
    std::vector<double> weights(params_.numFunctions);
    for (std::uint32_t i = 0; i < params_.numFunctions; ++i) {
        const auto len = static_cast<std::uint32_t>(
            1 + rng_.nextGeometric(1.0 / params_.meanFunctionLength));
        functions_.push_back({entry, len});
        entry += static_cast<Addr>(len) * params_.instBytes;
        weights[i] = std::pow(static_cast<double>(i + 1),
                              -params_.functionZipf);
    }
    textBytes_ = entry - params_.base;
    callSampler_ = std::make_unique<DiscreteSampler>(weights);
    enterFunction(static_cast<std::uint32_t>(
        callSampler_->sample(rng_)));
    runLeft_ = 1 + static_cast<std::uint32_t>(
        rng_.nextGeometric(1.0 / params_.meanRunLength));
}

void
LoopInstructionGenerator::enterFunction(std::uint32_t index)
{
    currentFunction_ = index;
    offset_ = 0;
}

Addr
LoopInstructionGenerator::next()
{
    const Function &f = functions_[currentFunction_];
    const Addr addr =
        f.entry + static_cast<Addr>(offset_) * params_.instBytes;

    // Decide where the next fetch comes from.
    bool decide = false;
    if (runLeft_ > 1) {
        --runLeft_;
    } else {
        decide = true;
        runLeft_ = 1 + static_cast<std::uint32_t>(
            rng_.nextGeometric(1.0 / params_.meanRunLength));
    }

    auto returnOrJump = [this]() {
        if (!callStack_.empty()) {
            const Frame frame = callStack_.back();
            callStack_.pop_back();
            currentFunction_ = frame.function;
            offset_ = frame.resumeOffset;
            const std::uint32_t len =
                functions_[currentFunction_].lengthInsts;
            if (offset_ >= len)
                offset_ = len - 1;
        } else {
            enterFunction(static_cast<std::uint32_t>(
                callSampler_->sample(rng_)));
        }
    };

    if (decide) {
        const double u = rng_.nextDouble();
        if (u < params_.loopBranchProb) {
            // Backward branch within the function.
            const auto span = static_cast<std::uint32_t>(
                1 + rng_.nextGeometric(1.0 / params_.meanLoopSpan));
            offset_ = offset_ > span ? offset_ - span : 0;
        } else if (u < params_.loopBranchProb + params_.callProb) {
            // Call: remember the return point (bounded stack depth
            // keeps runaway recursion from accumulating state).
            if (callStack_.size() < 64)
                callStack_.push_back(
                    {currentFunction_, offset_ + 1});
            enterFunction(static_cast<std::uint32_t>(
                callSampler_->sample(rng_)));
        } else if (u < params_.loopBranchProb + params_.callProb +
                           params_.returnProb) {
            returnOrJump();
        } else {
            ++offset_;
        }
    } else {
        ++offset_;
    }

    if (offset_ >= functions_[currentFunction_].lengthInsts)
        returnOrJump();

    return addr;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadParams &params,
                                     std::uint64_t seed)
    : params_(params),
      rng_(seed),
      inst_(params.inst, seed ^ 0x9e3779b97f4a7c15ULL),
      data_(params.data, seed ^ 0xc2b2ae3d27d4eb4fULL)
{
    if (params_.dataRefFraction < 0.0 ||
        params_.dataRefFraction > 1.0)
        mlc_panic("dataRefFraction out of [0,1]: ",
                  params_.dataRefFraction);
    if (params_.storeFraction < 0.0 || params_.storeFraction > 1.0)
        mlc_panic("storeFraction out of [0,1]: ",
                  params_.storeFraction);
}

bool
WorkloadGenerator::next(MemRef &ref)
{
    if (dataPending_) {
        ref = pendingRef_;
        dataPending_ = false;
        return true;
    }

    ref.addr = inst_.next();
    ref.type = RefType::IFetch;
    ref.size = 4;
    ref.pid = params_.pid;

    if (rng_.nextBool(params_.dataRefFraction)) {
        pendingRef_.addr = data_.next();
        pendingRef_.type = rng_.nextBool(params_.storeFraction)
                               ? RefType::Store
                               : RefType::Load;
        pendingRef_.size = 4;
        pendingRef_.pid = params_.pid;
        dataPending_ = true;
    }
    return true;
}

WorkloadParams
makeProcessParams(std::uint16_t pid, std::uint64_t variant)
{
    // Jitter the locality parameters per process so the
    // multiprogrammed mix is not eight copies of one program,
    // mirroring the varied VMS/Ultrix/user workloads in the paper.
    Rng jitter(0x8e51ab1eULL + variant * 1021 + pid);
    WorkloadParams p;
    p.pid = pid;
    // Scatter each process's segments within its address space:
    // congruent bases would make all processes' hot regions alias
    // into the same sets of any direct-mapped cache up to the
    // scatter range (16 MB), which real multiprogrammed physical
    // address streams do not do.
    const Addr text_scatter = jitter.nextBounded(1u << 24) & ~0xfffULL;
    const Addr data_scatter = jitter.nextBounded(1u << 24) & ~0xfffULL;
    p.inst.base = (static_cast<Addr>(pid) << 32) + text_scatter;
    p.inst.numFunctions =
        static_cast<std::uint32_t>(jitter.nextRange(256, 512));
    p.inst.functionZipf = 1.25 + 0.35 * jitter.nextDouble();
    p.inst.meanFunctionLength = 56 + 48 * jitter.nextDouble();
    p.data.base = (static_cast<Addr>(pid) << 32) + 0x40000000 +
                  data_scatter;
    p.data.theta = 0.64 + 0.10 * jitter.nextDouble();
    p.data.localityScale = 4.0 + 2.0 * jitter.nextDouble();
    p.dataRefFraction = 0.45 + 0.10 * jitter.nextDouble();
    p.storeFraction = 0.30 + 0.10 * jitter.nextDouble();
    return p;
}

} // namespace trace
} // namespace mlc
