/**
 * @file
 * An implicit-key order-statistic treap over 64-bit payloads.
 *
 * This is the engine of the LRU-stack trace generator: the treap
 * holds the LRU stack (index 0 = most recently used), and both
 * "reference the d-th most recent granule" (removeAt) and "move it
 * to the top" (insertAt 0) are O(log n) expected. Nodes live in a
 * pooled vector with a free list, so the structure is compact and
 * allocation-free in steady state.
 */

#ifndef MLC_TRACE_ORDER_STAT_TREE_HH
#define MLC_TRACE_ORDER_STAT_TREE_HH

#include <cstdint>
#include <vector>

#include "util/random.hh"

namespace mlc {
namespace trace {

/** Sequence container with O(log n) positional insert/remove. */
class OrderStatTree
{
  public:
    /** @param seed seeds the internal priority generator. */
    explicit OrderStatTree(std::uint64_t seed = 1);

    /** Number of elements. */
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Insert @p value so that it becomes element @p index. */
    void insertAt(std::size_t index, std::uint64_t value);

    /** Shorthand for insertAt(0, value). */
    void pushFront(std::uint64_t value) { insertAt(0, value); }

    /** Shorthand for insertAt(size(), value). */
    void pushBack(std::uint64_t value) { insertAt(count_, value); }

    /** Read element @p index without modifying the sequence. */
    std::uint64_t at(std::size_t index) const;

    /** Remove and return element @p index. */
    std::uint64_t removeAt(std::size_t index);

    /** Remove everything. */
    void clear();

    /** In-order contents; O(n), for tests and tools. */
    std::vector<std::uint64_t> toVector() const;

  private:
    using NodeId = std::uint32_t;
    static constexpr NodeId kNil = 0xffffffffu;

    struct Node
    {
        NodeId left;
        NodeId right;
        std::uint32_t size;
        std::uint64_t priority;
        std::uint64_t value;
    };

    NodeId allocNode(std::uint64_t value);
    void freeNode(NodeId id);

    std::uint32_t sizeOf(NodeId id) const;
    void update(NodeId id);

    /**
     * Split @p root so that @p left keeps the first @p count
     * elements and @p right the rest.
     */
    void splitAt(NodeId root, std::size_t count, NodeId &left,
                 NodeId &right);
    NodeId merge(NodeId a, NodeId b);

    std::vector<Node> nodes_;
    std::vector<NodeId> freeList_;
    NodeId root_ = kNil;
    std::size_t count_ = 0;
    Rng rng_;
};

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_ORDER_STAT_TREE_HH
