#include "trace/binary.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MLC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/logging.hh"

namespace mlc {
namespace trace {

namespace {

constexpr char kMagic[4] = {'M', 'L', 'C', 'T'};

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};
static_assert(sizeof(Header) == 16, "header must pack to 16 bytes");

} // namespace

BinaryReader::BinaryReader(std::istream &is) : is_(is)
{
    Header header{};
    is_.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!is_ || std::memcmp(header.magic, kMagic, 4) != 0)
        mlc_fatal("binary trace: bad magic (not an MLCT file)");
    if (header.version != kBinaryTraceVersion)
        mlc_fatal("binary trace: unsupported version ",
                  header.version);
    declared_ = header.count;
}

bool
BinaryReader::next(MemRef &ref)
{
    BinaryRecord rec{};
    is_.read(reinterpret_cast<char *>(&rec), sizeof(rec));
    if (!is_) {
        if (declared_ != kBinaryCountUnknown &&
            delivered_ != declared_)
            warn("binary trace: truncated; header promised ",
                 declared_, " records, got ", delivered_);
        return false;
    }
    if (rec.type > 2) {
        warn("binary trace: bad record type ",
             static_cast<int>(rec.type), "; stopping");
        return false;
    }
    ref.addr = rec.addr;
    ref.type = static_cast<RefType>(rec.type);
    ref.size = rec.size;
    ref.pid = rec.pid;
    ++delivered_;
    return true;
}

namespace {

/** Validate a raw header; fatal() on anything unexpected. */
std::uint64_t
checkHeader(const Header &header, const std::string &path)
{
    if (std::memcmp(header.magic, kMagic, 4) != 0)
        mlc_fatal(path, ": bad magic (not an MLCT file)");
    if (header.version != kBinaryTraceVersion)
        mlc_fatal(path, ": unsupported binary trace version ",
                  header.version);
    return header.count;
}

} // namespace

MappedBinaryTrace::MappedBinaryTrace(const std::string &path,
                                     Backing backing,
                                     Validation validation)
    : lazy_(validation == Validation::Lazy)
{
#if MLC_HAVE_MMAP
    if (backing == Backing::Auto) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            mlc_fatal(path, ": cannot open binary trace");
        struct stat st{};
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            mlc_fatal(path, ": cannot stat binary trace");
        }
        const std::size_t bytes =
            static_cast<std::size_t>(st.st_size);
        if (bytes < sizeof(Header)) {
            ::close(fd);
            mlc_fatal(path, ": truncated binary trace header");
        }
        void *base =
            ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
        // The descriptor is not needed once mapped (POSIX keeps
        // the mapping alive); on mmap failure fall through to the
        // buffered loader rather than failing the run.
        ::close(fd);
        if (base != MAP_FAILED) {
            mapBase_ = base;
            mapBytes_ = bytes;
            Header header{};
            std::memcpy(&header, base, sizeof(header));
            declared_ = checkHeader(header, path);
            data_ = reinterpret_cast<const MemRef *>(
                static_cast<const char *>(base) + sizeof(Header));
            count_ = (bytes - sizeof(Header)) / sizeof(MemRef);
            if (!lazy_)
                validateRecords(path);
            return;
        }
        warn(path, ": mmap failed; falling back to buffered read");
    }
#else
    (void)backing;
#endif
    loadBuffered(path);
    // The buffered loader already touched every byte, so the
    // eager scan costs nothing extra; lazy mode still skips it to
    // keep the two backings behaviourally identical.
    if (!lazy_)
        validateRecords(path);
}

void
MappedBinaryTrace::loadBuffered(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        mlc_fatal(path, ": cannot open binary trace");
    Header header{};
    is.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!is)
        mlc_fatal(path, ": truncated binary trace header");
    declared_ = checkHeader(header, path);

    // Records shadow MemRef bit-for-bit (static_asserts in the
    // header), so the file body can be read straight into MemRef
    // storage — one copy total.
    is.seekg(0, std::ios::end);
    const std::streamoff end = is.tellg();
    is.seekg(static_cast<std::streamoff>(sizeof(Header)));
    const std::size_t bytes = end < 0
                                  ? 0
                                  : static_cast<std::size_t>(end) -
                                        sizeof(Header);
    buffer_.resize(bytes / sizeof(MemRef));
    if (!buffer_.empty())
        is.read(reinterpret_cast<char *>(buffer_.data()),
                static_cast<std::streamsize>(buffer_.size() *
                                             sizeof(MemRef)));
    if (!is)
        mlc_fatal(path, ": short read of binary trace body");
    data_ = buffer_.data();
    count_ = buffer_.size();
}

void
MappedBinaryTrace::validateRecords(const std::string &path)
{
    for (std::size_t i = 0; i < count_; ++i) {
        if (static_cast<std::uint8_t>(data_[i].type) > 2) {
            warn(path, ": bad record type at record ", i,
                 "; dropping the remaining ", count_ - i,
                 " records");
            count_ = i;
            break;
        }
    }
    if (declared_ != kBinaryCountUnknown && count_ != declared_)
        warn(path, ": header promised ", declared_,
             " records, file holds ", count_);
}

void
MappedBinaryTrace::validateRange(std::size_t begin,
                                 std::size_t n) const
{
    if (!lazy_)
        return; // the constructor's scan already vetted everything
    if (begin > count_ || n > count_ - begin)
        mlc_fatal("validateRange [", begin, ", ", begin + n,
                  ") outside trace of ", count_, " records");
    for (std::size_t i = begin; i < begin + n; ++i) {
        if (static_cast<std::uint8_t>(data_[i].type) > 2)
            mlc_fatal("bad record type ",
                      static_cast<int>(data_[i].type),
                      " at record ", i,
                      " of a lazily validated trace");
    }
}

MappedBinaryTrace::MappedBinaryTrace(
    MappedBinaryTrace &&other) noexcept
    : data_(other.data_), count_(other.count_),
      declared_(other.declared_), lazy_(other.lazy_),
      mapBase_(other.mapBase_), mapBytes_(other.mapBytes_),
      buffer_(std::move(other.buffer_))
{
    other.mapBase_ = nullptr;
    other.mapBytes_ = 0;
    other.data_ = nullptr;
    other.count_ = 0;
    if (!buffer_.empty())
        data_ = buffer_.data();
}

MappedBinaryTrace::~MappedBinaryTrace()
{
#if MLC_HAVE_MMAP
    if (mapBase_)
        ::munmap(mapBase_, mapBytes_);
#endif
}

void
MappedBinaryTrace::adviseSequential() const
{
#if MLC_HAVE_MMAP
    if (mapBase_)
        // Advisory only: a refusal (e.g. on an exotic filesystem)
        // costs correctness nothing, so the result is ignored.
        (void)::madvise(mapBase_, mapBytes_, MADV_SEQUENTIAL);
#endif
}

void
MappedBinaryTrace::releaseConsumed(std::size_t upTo) const
{
#if MLC_HAVE_MMAP
    if (!mapBase_)
        return;
    upTo = std::min(upTo, count_);
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0)
        return;
    // Round DOWN to a page boundary: the tail page may still hold
    // the first records of the next chunk.
    const std::size_t consumed_end =
        sizeof(Header) + upTo * sizeof(MemRef);
    const std::size_t aligned =
        consumed_end & ~(static_cast<std::size_t>(page) - 1);
    if (aligned == 0)
        return;
    (void)::madvise(mapBase_, aligned, MADV_DONTNEED);
#endif
    (void)upTo;
}

BinaryWriter::BinaryWriter(std::ostream &os) : os_(os)
{
    Header header{};
    std::memcpy(header.magic, kMagic, 4);
    header.version = kBinaryTraceVersion;
    header.count = kBinaryCountUnknown;
    os_.write(reinterpret_cast<const char *>(&header),
              sizeof(header));
}

void
BinaryWriter::put(const MemRef &ref)
{
    if (finished_)
        mlc_panic("BinaryWriter::put after finish");
    BinaryRecord rec{};
    rec.addr = ref.addr;
    rec.type = static_cast<std::uint8_t>(ref.type);
    rec.size = ref.size;
    rec.pid = ref.pid;
    rec.reserved = 0;
    os_.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
    ++written_;
}

void
BinaryWriter::putSpan(RefSpan refs)
{
    if (finished_)
        mlc_panic("BinaryWriter::putSpan after finish");
    constexpr std::size_t kChunk = 4096; // 64KB of records
    std::vector<BinaryRecord> buf(std::min(kChunk, refs.size));
    std::size_t done = 0;
    while (done < refs.size) {
        const std::size_t n = std::min(kChunk, refs.size - done);
        for (std::size_t i = 0; i < n; ++i) {
            const MemRef &ref = refs[done + i];
            buf[i].addr = ref.addr;
            buf[i].type = static_cast<std::uint8_t>(ref.type);
            buf[i].size = ref.size;
            buf[i].pid = ref.pid;
            buf[i].reserved = 0;
        }
        os_.write(reinterpret_cast<const char *>(buf.data()),
                  static_cast<std::streamsize>(n *
                                               sizeof(BinaryRecord)));
        done += n;
    }
    written_ += refs.size;
}

void
BinaryWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    const std::ostream::pos_type end = os_.tellp();
    if (end == std::ostream::pos_type(-1)) {
        // Not seekable (e.g. a pipe); leave count unknown.
        return;
    }
    os_.seekp(8); // offset of Header::count
    os_.write(reinterpret_cast<const char *>(&written_),
              sizeof(written_));
    os_.seekp(end);
}

} // namespace trace
} // namespace mlc
