#include "trace/binary.hh"

#include <cstring>

#include "util/logging.hh"

namespace mlc {
namespace trace {

namespace {

constexpr char kMagic[4] = {'M', 'L', 'C', 'T'};

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};
static_assert(sizeof(Header) == 16, "header must pack to 16 bytes");

} // namespace

BinaryReader::BinaryReader(std::istream &is) : is_(is)
{
    Header header{};
    is_.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!is_ || std::memcmp(header.magic, kMagic, 4) != 0)
        mlc_fatal("binary trace: bad magic (not an MLCT file)");
    if (header.version != kBinaryTraceVersion)
        mlc_fatal("binary trace: unsupported version ",
                  header.version);
    declared_ = header.count;
}

bool
BinaryReader::next(MemRef &ref)
{
    BinaryRecord rec{};
    is_.read(reinterpret_cast<char *>(&rec), sizeof(rec));
    if (!is_) {
        if (declared_ != kBinaryCountUnknown &&
            delivered_ != declared_)
            warn("binary trace: truncated; header promised ",
                 declared_, " records, got ", delivered_);
        return false;
    }
    if (rec.type > 2) {
        warn("binary trace: bad record type ",
             static_cast<int>(rec.type), "; stopping");
        return false;
    }
    ref.addr = rec.addr;
    ref.type = static_cast<RefType>(rec.type);
    ref.size = rec.size;
    ref.pid = rec.pid;
    ++delivered_;
    return true;
}

BinaryWriter::BinaryWriter(std::ostream &os) : os_(os)
{
    Header header{};
    std::memcpy(header.magic, kMagic, 4);
    header.version = kBinaryTraceVersion;
    header.count = kBinaryCountUnknown;
    os_.write(reinterpret_cast<const char *>(&header),
              sizeof(header));
}

void
BinaryWriter::put(const MemRef &ref)
{
    if (finished_)
        mlc_panic("BinaryWriter::put after finish");
    BinaryRecord rec{};
    rec.addr = ref.addr;
    rec.type = static_cast<std::uint8_t>(ref.type);
    rec.size = ref.size;
    rec.pid = ref.pid;
    rec.reserved = 0;
    os_.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
    ++written_;
}

void
BinaryWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    const std::ostream::pos_type end = os_.tellp();
    if (end == std::ostream::pos_type(-1)) {
        // Not seekable (e.g. a pipe); leave count unknown.
        return;
    }
    os_.seekp(8); // offset of Header::count
    os_.write(reinterpret_cast<const char *>(&written_),
              sizeof(written_));
    os_.seekp(end);
}

} // namespace trace
} // namespace mlc
