#include "trace/dinero.hh"

#include <cstdio>

#include "util/logging.hh"
#include "util/str.hh"

namespace mlc {
namespace trace {

bool
parseDineroLine(const std::string &text, MemRef &ref)
{
    const auto fields = splitWhitespace(text);
    if (fields.size() < 2 || fields.size() > 3)
        return false;

    unsigned long long label = 0;
    if (!parseUnsigned(fields[0], label) || label > 2)
        return false;

    // Addresses are hex with or without an 0x prefix.
    const std::string &addr_text = fields[1];
    unsigned long long addr = 0;
    {
        const std::string with_prefix =
            startsWith(addr_text, "0x") || startsWith(addr_text, "0X")
                ? addr_text
                : "0x" + addr_text;
        if (!parseUnsigned(with_prefix, addr))
            return false;
    }

    unsigned long long pid = 0;
    if (fields.size() == 3) {
        if (!parseUnsigned(fields[2], pid) || pid > 0xffff)
            return false;
    }

    switch (label) {
      case 0:
        ref.type = RefType::Load;
        break;
      case 1:
        ref.type = RefType::Store;
        break;
      default:
        ref.type = RefType::IFetch;
        break;
    }
    ref.addr = addr;
    ref.size = 4;
    ref.pid = static_cast<std::uint16_t>(pid);
    return true;
}

std::string
formatDineroLine(const MemRef &ref, bool emit_pid)
{
    int label = 0;
    switch (ref.type) {
      case RefType::Load:
        label = 0;
        break;
      case RefType::Store:
        label = 1;
        break;
      case RefType::IFetch:
        label = 2;
        break;
    }
    char buf[64];
    if (emit_pid)
        std::snprintf(buf, sizeof(buf), "%d %llx %u", label,
                      static_cast<unsigned long long>(ref.addr),
                      static_cast<unsigned>(ref.pid));
    else
        std::snprintf(buf, sizeof(buf), "%d %llx", label,
                      static_cast<unsigned long long>(ref.addr));
    return buf;
}

bool
DineroReader::next(MemRef &ref)
{
    if (failed_)
        return false;
    std::string text;
    while (std::getline(is_, text)) {
        ++line_;
        const std::string trimmed = trim(text);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        if (!parseDineroLine(trimmed, ref)) {
            warn("dinero trace: malformed line ", line_, ": '",
                 trimmed, "'");
            failed_ = true;
            return false;
        }
        return true;
    }
    return false;
}

void
DineroWriter::put(const MemRef &ref)
{
    os_ << formatDineroLine(ref, emitPid_) << '\n';
}

} // namespace trace
} // namespace mlc
