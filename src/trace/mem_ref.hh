/**
 * @file
 * The memory-reference record that flows through every trace source,
 * filter and simulator in the library.
 *
 * Following the paper, miss ratios are computed over *read* requests
 * (loads and instruction fetches) only; MemRef::isRead captures that
 * definition in one place.
 */

#ifndef MLC_TRACE_MEM_REF_HH
#define MLC_TRACE_MEM_REF_HH

#include <cstdint>
#include <string>

namespace mlc {

/** Byte address within the simulated physical address space. */
using Addr = std::uint64_t;

namespace trace {

/** The three reference types the CPU model issues. */
enum class RefType : std::uint8_t {
    IFetch = 0, //!< instruction fetch (a read)
    Load = 1,   //!< data read
    Store = 2,  //!< data write
};

/** Printable name ("ifetch", "load", "store"). */
const char *refTypeName(RefType type);

/** One memory reference. */
struct MemRef
{
    Addr addr = 0;
    RefType type = RefType::IFetch;
    /** Access size in bytes (the paper's machine is word = 4 B). */
    std::uint8_t size = 4;
    /** Originating process for multiprogramming traces. */
    std::uint16_t pid = 0;

    /** Reads are loads and instruction fetches (paper, Section 2). */
    bool isRead() const { return type != RefType::Store; }
    bool isWrite() const { return type == RefType::Store; }
    bool isInst() const { return type == RefType::IFetch; }
    bool isData() const { return type != RefType::IFetch; }

    bool
    operator==(const MemRef &o) const
    {
        return addr == o.addr && type == o.type && size == o.size &&
               pid == o.pid;
    }

    /** Debug representation, e.g. "load 0x1f00 (4B, pid 2)". */
    std::string toString() const;
};

/** Convenience constructors used heavily in tests. */
inline MemRef
makeLoad(Addr addr, std::uint16_t pid = 0)
{
    return MemRef{addr, RefType::Load, 4, pid};
}

inline MemRef
makeStore(Addr addr, std::uint16_t pid = 0)
{
    return MemRef{addr, RefType::Store, 4, pid};
}

inline MemRef
makeIFetch(Addr addr, std::uint16_t pid = 0)
{
    return MemRef{addr, RefType::IFetch, 4, pid};
}

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_MEM_REF_HH
