/**
 * @file
 * The memory-reference record that flows through every trace source,
 * filter and simulator in the library.
 *
 * Following the paper, miss ratios are computed over *read* requests
 * (loads and instruction fetches) only; MemRef::isRead captures that
 * definition in one place.
 */

#ifndef MLC_TRACE_MEM_REF_HH
#define MLC_TRACE_MEM_REF_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace mlc {

/** Byte address within the simulated physical address space. */
using Addr = std::uint64_t;

namespace trace {

/** The three reference types the CPU model issues. */
enum class RefType : std::uint8_t {
    IFetch = 0, //!< instruction fetch (a read)
    Load = 1,   //!< data read
    Store = 2,  //!< data write
};

/** Printable name ("ifetch", "load", "store"). */
const char *refTypeName(RefType type);

/** One memory reference. */
struct MemRef
{
    Addr addr = 0;
    RefType type = RefType::IFetch;
    /** Access size in bytes (the paper's machine is word = 4 B). */
    std::uint8_t size = 4;
    /** Originating process for multiprogramming traces. */
    std::uint16_t pid = 0;

    /** Reads are loads and instruction fetches (paper, Section 2). */
    bool isRead() const { return type != RefType::Store; }
    bool isWrite() const { return type == RefType::Store; }
    bool isInst() const { return type == RefType::IFetch; }
    bool isData() const { return type != RefType::IFetch; }

    bool
    operator==(const MemRef &o) const
    {
        return addr == o.addr && type == o.type && size == o.size &&
               pid == o.pid;
    }

    /** Debug representation, e.g. "load 0x1f00 (4B, pid 2)". */
    std::string toString() const;
};

/**
 * A non-owning view over a contiguous run of references — the
 * zero-copy replay currency. Materialized traces, mapped binary
 * files and batch buffers all hand out RefSpans so the simulators
 * iterate plain arrays with no virtual dispatch per reference.
 *
 * (Deliberately a minimal aggregate rather than std::span: the two
 * fields keep aggregate initialization from raw pointer + count
 * trivial at every call site.)
 */
struct RefSpan
{
    const MemRef *data = nullptr;
    std::size_t size = 0;

    RefSpan() = default;
    RefSpan(const MemRef *d, std::size_t n) : data(d), size(n) {}

    const MemRef *begin() const { return data; }
    const MemRef *end() const { return data + size; }
    bool empty() const { return size == 0; }
    const MemRef &operator[](std::size_t i) const { return data[i]; }

    /** The first @p n references (clamped to the span). */
    RefSpan first(std::size_t n) const
    {
        return {data, n < size ? n : size};
    }
    /** Everything after the first @p n references (clamped). */
    RefSpan dropFirst(std::size_t n) const
    {
        return n < size ? RefSpan{data + n, size - n}
                        : RefSpan{data + size, 0};
    }
};

/** Convenience constructors used heavily in tests. */
inline MemRef
makeLoad(Addr addr, std::uint16_t pid = 0)
{
    return MemRef{addr, RefType::Load, 4, pid};
}

inline MemRef
makeStore(Addr addr, std::uint16_t pid = 0)
{
    return MemRef{addr, RefType::Store, 4, pid};
}

inline MemRef
makeIFetch(Addr addr, std::uint16_t pid = 0)
{
    return MemRef{addr, RefType::IFetch, 4, pid};
}

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_MEM_REF_HH
