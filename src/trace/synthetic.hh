/**
 * @file
 * Synthetic reference-stream generators.
 *
 * The paper drove its simulator with eight multiprogramming traces
 * (four ATUM VAX traces with OS activity, four interleaved MIPS
 * R2000 user traces). Those traces are not publicly available, so
 * this module provides generative models engineered to reproduce
 * the two stream properties the paper's conclusions rest on:
 *
 *  1. The solo read miss ratio of a cache falls by a roughly
 *     constant factor (the paper measures ~0.69) per doubling of
 *     cache size across 4KB..4MB. The data stream is produced by an
 *     LRU-stack generative model whose stack-depth distribution is
 *     a discrete Pareto: by construction, the miss ratio of a
 *     fully-associative LRU cache of S granules equals
 *     P(depth >= S) ~ (S / s0)^-theta, i.e. a constant factor
 *     2^-theta per doubling. theta = 0.535 gives the paper's 0.69.
 *
 *  2. Instruction fetches dominate references and are strongly
 *     sequential with loop/call structure; a loop-and-call Markov
 *     model over a Zipf-popular function table produces that.
 *
 * Generators are deterministic given their seed.
 */

#ifndef MLC_TRACE_SYNTHETIC_HH
#define MLC_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/mem_ref.hh"
#include "trace/order_stat_tree.hh"
#include "trace/source.hh"
#include "util/random.hh"

namespace mlc {
namespace trace {

/**
 * Samples LRU stack depths from a discrete Pareto distribution:
 * P(depth >= d) = min(1, ((d + 1) / s0)^-theta).
 */
class ParetoDepthSampler
{
  public:
    /**
     * @param theta tail exponent (> 0); miss ratio per size
     *        doubling changes by 2^-theta.
     * @param s0 locality scale (>= 1); larger values shift the
     *        whole miss-ratio curve up.
     */
    ParetoDepthSampler(double theta, double s0);

    /** Draw a depth (0 = most recently used granule). */
    std::uint64_t sample(Rng &rng) const;

    /** P(depth >= d): the fully-associative LRU miss ratio at d. */
    double tail(std::uint64_t d) const;

    double theta() const { return theta_; }

  private:
    double theta_;
    double s0_;
};

/** Parameters of the data-reference stack model. */
struct DataStreamParams
{
    /** Granule size in bytes (spatial-locality unit). */
    std::uint64_t granuleBytes = 16;
    /** Tail exponent; 0.535 yields the paper's 0.69/doubling. */
    double theta = 0.60;
    /** Locality scale; calibrates absolute miss levels. */
    double localityScale = 3.5;
    /** Footprint cap: beyond this many granules, deep references
     *  allocate new granules (compulsory misses). */
    std::uint64_t footprintGranules = 1u << 17;
    /**
     * Granules pre-installed in the stack at construction. A
     * warmed-up footprint makes deep references hit old data
     * instead of allocating, so the miss-ratio-vs-size curve is
     * the pure Pareto power law across the whole 4KB..4MB range
     * the paper sweeps (long-running real programs have touched
     * far more data than any trace window shows). Clamped to
     * footprintGranules.
     */
    std::uint64_t initialFootprintGranules = 1u << 17;
    /** Base byte address of the data segment. */
    Addr base = 0x40000000;
};

/**
 * LRU-stack generative model for data addresses. Each call draws a
 * stack depth; the granule at that depth is referenced and moved to
 * the top. Depths beyond the current stack (or the footprint cap)
 * allocate fresh granules.
 */
class StackDataGenerator
{
  public:
    StackDataGenerator(const DataStreamParams &params,
                       std::uint64_t seed);

    /** Produce the next data byte address. */
    Addr next();

    /** Current number of distinct granules touched. */
    std::uint64_t footprint() const { return stack_.size(); }

    const DataStreamParams &params() const { return params_; }

  private:
    DataStreamParams params_;
    ParetoDepthSampler depths_;
    Rng rng_;
    OrderStatTree stack_;
    std::uint64_t nextGranule_ = 0;
};

/** Parameters of the instruction-fetch model. */
struct InstStreamParams
{
    /** Number of distinct functions in the program. */
    std::uint32_t numFunctions = 512;
    /** Zipf popularity exponent over functions. */
    double functionZipf = 1.2;
    /** Mean function length in instructions (geometric). */
    double meanFunctionLength = 96;
    /** Mean sequential run between branch decisions. */
    double meanRunLength = 8;
    /** At a branch point: probability of a backward loop branch. */
    double loopBranchProb = 0.46;
    /** ... of calling another function. */
    double callProb = 0.07;
    /** ... of returning to the caller. */
    double returnProb = 0.07;
    /** Mean backward branch displacement in instructions. */
    double meanLoopSpan = 24;
    /** Base byte address of the text segment. */
    Addr base = 0;
    /** Instruction size in bytes. */
    std::uint32_t instBytes = 4;
};

/**
 * Loop-and-call instruction-fetch model. A program is a table of
 * functions with Zipf-distributed call popularity; the generator
 * walks sequentially, takes backward loop branches, calls and
 * returns, yielding an instruction stream with realistic spatial
 * and temporal locality whose footprint is
 * numFunctions * meanFunctionLength * instBytes.
 */
class LoopInstructionGenerator
{
  public:
    LoopInstructionGenerator(const InstStreamParams &params,
                             std::uint64_t seed);

    /** Produce the next instruction-fetch byte address. */
    Addr next();

    const InstStreamParams &params() const { return params_; }

    /** Total text-segment bytes across all functions. */
    std::uint64_t textBytes() const { return textBytes_; }

  private:
    struct Function
    {
        Addr entry;
        std::uint32_t lengthInsts;
    };

    struct Frame
    {
        std::uint32_t function;
        std::uint32_t resumeOffset;
    };

    void enterFunction(std::uint32_t index);

    InstStreamParams params_;
    Rng rng_;
    std::vector<Function> functions_;
    std::unique_ptr<DiscreteSampler> callSampler_;
    std::vector<Frame> callStack_;
    std::uint32_t currentFunction_ = 0;
    std::uint32_t offset_ = 0;     //!< instruction offset in function
    std::uint32_t runLeft_ = 1;    //!< fetches before next decision
    std::uint64_t textBytes_ = 0;
};

/** Parameters combining both streams into a CPU workload. */
struct WorkloadParams
{
    InstStreamParams inst;
    DataStreamParams data;
    /** Fraction of instructions carrying a data reference
     *  (paper: ~50% of non-stall cycles). */
    double dataRefFraction = 0.5;
    /** Fraction of data references that are stores
     *  (companion thesis: ~35%). */
    double storeFraction = 0.35;
    /** Process id stamped on every reference. */
    std::uint16_t pid = 0;
};

/**
 * A complete single-process workload: per instruction, one ifetch
 * and possibly one data reference, matching the paper's RISC-like
 * CPU model.
 */
class WorkloadGenerator : public TraceSource
{
  public:
    WorkloadGenerator(const WorkloadParams &params,
                      std::uint64_t seed);

    bool next(MemRef &ref) override;

    const WorkloadParams &params() const { return params_; }

  private:
    WorkloadParams params_;
    Rng rng_;
    LoopInstructionGenerator inst_;
    StackDataGenerator data_;
    bool dataPending_ = false;
    MemRef pendingRef_;
};

/**
 * Build the default eight-trace workload suite used by the
 * benchmark harness: @p processes multiprogrammed processes with
 * slightly varied locality parameters per seed.
 */
WorkloadParams makeProcessParams(std::uint16_t pid,
                                 std::uint64_t variant);

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_SYNTHETIC_HH
