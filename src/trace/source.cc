#include "trace/source.hh"

#include <algorithm>

namespace mlc {
namespace trace {

std::uint64_t
drain(TraceSource &source, TraceSink &sink)
{
    std::uint64_t n = 0;
    MemRef ref;
    while (source.next(ref)) {
        sink.put(ref);
        ++n;
    }
    return n;
}

std::vector<MemRef>
collect(TraceSource &source, std::uint64_t limit)
{
    std::vector<MemRef> out;
    // The limit is a cap, not a size hint — callers pass
    // uint64_max to mean "everything", which must not be reserved.
    out.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(limit, 1u << 20)));
    MemRef ref;
    while (out.size() < limit && source.next(ref))
        out.push_back(ref);
    return out;
}

} // namespace trace
} // namespace mlc
