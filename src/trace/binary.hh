/**
 * @file
 * Packed binary trace format ("MLCT").
 *
 * Layout (little-endian):
 *   header:  magic "MLCT" | u32 version | u64 record count
 *   record:  u64 addr | u8 type | u8 size | u16 pid | u32 reserved
 *
 * Binary traces are ~6x smaller and ~20x faster to parse than the
 * ASCII format; the count in the header lets tools pre-size buffers
 * and detect truncation. A count of ~0ULL marks a stream that was
 * not finalized (writer destroyed without finish()).
 */

#ifndef MLC_TRACE_BINARY_HH
#define MLC_TRACE_BINARY_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "trace/source.hh"

namespace mlc {
namespace trace {

/** Fixed 16-byte on-disk record. */
struct BinaryRecord
{
    std::uint64_t addr;
    std::uint8_t type;
    std::uint8_t size;
    std::uint16_t pid;
    std::uint32_t reserved;
};
static_assert(sizeof(BinaryRecord) == 16,
              "binary trace record must pack to 16 bytes");

// The on-disk record was laid out to shadow MemRef exactly (the
// reserved word covers MemRef's tail padding), which is what lets a
// mapped file be served as a RefSpan with zero per-record work.
// These asserts are the contract: if MemRef ever changes shape, the
// zero-copy path must be revisited, not silently misread.
static_assert(sizeof(MemRef) == sizeof(BinaryRecord),
              "MemRef must stay layout-compatible with the binary "
              "trace record");
static_assert(offsetof(BinaryRecord, addr) == offsetof(MemRef, addr) &&
                  offsetof(BinaryRecord, type) ==
                      offsetof(MemRef, type) &&
                  offsetof(BinaryRecord, size) ==
                      offsetof(MemRef, size) &&
                  offsetof(BinaryRecord, pid) == offsetof(MemRef, pid),
              "MemRef field offsets must match the binary record");
static_assert(std::is_trivially_copyable_v<MemRef>,
              "zero-copy trace mapping requires a trivially "
              "copyable MemRef");

constexpr std::uint32_t kBinaryTraceVersion = 1;
constexpr std::uint64_t kBinaryCountUnknown = ~std::uint64_t{0};

/** Streaming reader; validates the header on construction. */
class BinaryReader : public TraceSource
{
  public:
    /**
     * Does not own @p is ; it must outlive the reader and must be
     * opened in binary mode. Calls fatal() on a bad magic/version.
     */
    explicit BinaryReader(std::istream &is);

    bool next(MemRef &ref) override;

    /** Record count promised by the header. */
    std::uint64_t declaredCount() const { return declared_; }

    /** Records actually delivered. */
    std::uint64_t deliveredCount() const { return delivered_; }

  private:
    std::istream &is_;
    std::uint64_t declared_ = 0;
    std::uint64_t delivered_ = 0;
};

/**
 * A whole binary trace file materialized with O(1) copies.
 *
 * On POSIX systems the file is mmap()ed read-only and the records
 * are served in place as a RefSpan — materialization cost is one
 * header validation plus one O(n) record-type scan over pages the
 * replay was going to touch anyway; no heap allocation proportional
 * to the trace. Where mmap is unavailable (or refused, e.g. on a
 * pipe-backed filesystem) the file is pread/ifstream-read into an
 * owned buffer instead — same span() result, one copy.
 *
 * Records after the first malformed one (type > 2) are dropped with
 * a warning, mirroring BinaryReader's stop-at-bad-record behaviour.
 */
class MappedBinaryTrace
{
  public:
    /** How to back the span. */
    enum class Backing {
        Auto,   //!< mmap where possible, buffered otherwise
        Buffer, //!< force the portable read-into-memory fallback
    };

    /** When to scan records for malformed types. */
    enum class Validation {
        /** Full O(n) scan at construction (touches every page;
         *  truncates at the first bad record with a warning). */
        Eager,
        /** Header-only at construction; callers validate just the
         *  ranges they replay via validateRange(). This is what
         *  lets a sampled run over a >RAM trace skip whole windows
         *  without faulting their pages in. */
        Lazy,
    };

    /** Map (or read) @p path; fatal() on missing/corrupt header. */
    explicit MappedBinaryTrace(const std::string &path,
                               Backing backing = Backing::Auto,
                               Validation validation =
                                   Validation::Eager);
    ~MappedBinaryTrace();

    MappedBinaryTrace(MappedBinaryTrace &&other) noexcept;
    MappedBinaryTrace &operator=(MappedBinaryTrace &&) = delete;
    MappedBinaryTrace(const MappedBinaryTrace &) = delete;
    MappedBinaryTrace &operator=(const MappedBinaryTrace &) = delete;

    /** All (valid) records, zero-copy when mapped. */
    RefSpan span() const { return {data_, count_}; }

    std::size_t size() const { return count_; }

    /** Record count promised by the header. */
    std::uint64_t declaredCount() const { return declared_; }

    /** True when span() points into the mapped file (no copy). */
    bool isMapped() const { return mapBase_ != nullptr; }

    /** True when construction skipped the record scan. */
    bool isLazy() const { return lazy_; }

    /**
     * Validate records [begin, begin + n): under lazy validation a
     * malformed record (type > 2) is fatal() — a lazily validated
     * replay has no way to truncate-and-continue, because earlier
     * skipped ranges were never checked either. No-op when the
     * trace was eagerly validated (the constructor already
     * truncated at the first bad record).
     */
    void validateRange(std::size_t begin, std::size_t n) const;

    /**
     * Tell the kernel the mapping will be read front to back
     * (MADV_SEQUENTIAL: aggressive read-ahead, early reclaim of
     * pages behind the cursor). No-op when buffered or where
     * madvise is unavailable.
     */
    void adviseSequential() const;

    /**
     * Drop the mapped pages backing records [0, upTo) from resident
     * memory (MADV_DONTNEED on a read-only file mapping: the pages
     * are clean, so this is a pure RSS release — re-touching them
     * would fault from the page cache or disk). Streaming consumers
     * (mrc::profileMapped) call this per chunk so peak RSS stays at
     * one chunk no matter how far the trace outgrows RAM. No-op
     * when buffered.
     */
    void releaseConsumed(std::size_t upTo) const;

  private:
    void loadBuffered(const std::string &path);
    /** Truncate count_ at the first malformed record. */
    void validateRecords(const std::string &path);

    const MemRef *data_ = nullptr;
    std::size_t count_ = 0;
    std::uint64_t declared_ = 0;
    bool lazy_ = false;

    void *mapBase_ = nullptr;  //!< non-null iff mmap backing
    std::size_t mapBytes_ = 0; //!< full mapping length
    std::vector<MemRef> buffer_; //!< fallback storage
};

/**
 * Streaming writer. finish() back-patches the record count; if the
 * stream is not seekable the count is left as "unknown".
 */
class BinaryWriter : public TraceSink
{
  public:
    /** Does not own @p os ; binary mode required. */
    explicit BinaryWriter(std::ostream &os);

    void put(const MemRef &ref) override;

    /**
     * Bulk write: one stream write per 64KB chunk instead of one
     * per record. Byte-identical output to put() in a loop — the
     * reserved word is still zeroed explicitly, never copied from
     * MemRef tail padding.
     */
    void putSpan(RefSpan refs);

    /** Finalize the header; further put() calls are an error. */
    void finish();

    std::uint64_t written() const { return written_; }

  private:
    std::ostream &os_;
    std::uint64_t written_ = 0;
    bool finished_ = false;
};

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_BINARY_HH
