/**
 * @file
 * Packed binary trace format ("MLCT").
 *
 * Layout (little-endian):
 *   header:  magic "MLCT" | u32 version | u64 record count
 *   record:  u64 addr | u8 type | u8 size | u16 pid | u32 reserved
 *
 * Binary traces are ~6x smaller and ~20x faster to parse than the
 * ASCII format; the count in the header lets tools pre-size buffers
 * and detect truncation. A count of ~0ULL marks a stream that was
 * not finalized (writer destroyed without finish()).
 */

#ifndef MLC_TRACE_BINARY_HH
#define MLC_TRACE_BINARY_HH

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <ostream>

#include "trace/source.hh"

namespace mlc {
namespace trace {

/** Fixed 16-byte on-disk record. */
struct BinaryRecord
{
    std::uint64_t addr;
    std::uint8_t type;
    std::uint8_t size;
    std::uint16_t pid;
    std::uint32_t reserved;
};
static_assert(sizeof(BinaryRecord) == 16,
              "binary trace record must pack to 16 bytes");

constexpr std::uint32_t kBinaryTraceVersion = 1;
constexpr std::uint64_t kBinaryCountUnknown = ~std::uint64_t{0};

/** Streaming reader; validates the header on construction. */
class BinaryReader : public TraceSource
{
  public:
    /**
     * Does not own @p is ; it must outlive the reader and must be
     * opened in binary mode. Calls fatal() on a bad magic/version.
     */
    explicit BinaryReader(std::istream &is);

    bool next(MemRef &ref) override;

    /** Record count promised by the header. */
    std::uint64_t declaredCount() const { return declared_; }

    /** Records actually delivered. */
    std::uint64_t deliveredCount() const { return delivered_; }

  private:
    std::istream &is_;
    std::uint64_t declared_ = 0;
    std::uint64_t delivered_ = 0;
};

/**
 * Streaming writer. finish() back-patches the record count; if the
 * stream is not seekable the count is left as "unknown".
 */
class BinaryWriter : public TraceSink
{
  public:
    /** Does not own @p os ; binary mode required. */
    explicit BinaryWriter(std::ostream &os);

    void put(const MemRef &ref) override;

    /** Finalize the header; further put() calls are an error. */
    void finish();

    std::uint64_t written() const { return written_; }

  private:
    std::ostream &os_;
    std::uint64_t written_ = 0;
    bool finished_ = false;
};

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_BINARY_HH
