#include "trace/compressed.hh"

#include <cstring>

#include "util/logging.hh"

namespace mlc {
namespace trace {

namespace {

constexpr char kMagic[4] = {'M', 'L', 'C', 'Z'};

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};
static_assert(sizeof(Header) == 16, "header must pack to 16 bytes");

constexpr std::uint64_t kCountUnknown = ~std::uint64_t{0};

constexpr std::uint8_t kPidFollows = 1u << 2;
constexpr std::uint8_t kSizeFollows = 1u << 3;

} // namespace

CompressedWriter::CompressedWriter(std::ostream &os) : os_(os)
{
    Header header{};
    std::memcpy(header.magic, kMagic, 4);
    header.version = kCompressedTraceVersion;
    header.count = kCountUnknown;
    os_.write(reinterpret_cast<const char *>(&header),
              sizeof(header));
}

void
CompressedWriter::writeVarint(std::uint64_t value)
{
    while (value >= 0x80) {
        const auto byte =
            static_cast<char>((value & 0x7f) | 0x80);
        os_.put(byte);
        value >>= 7;
    }
    os_.put(static_cast<char>(value));
}

void
CompressedWriter::put(const MemRef &ref)
{
    if (finished_)
        mlc_panic("CompressedWriter::put after finish");

    std::uint8_t control = static_cast<std::uint8_t>(ref.type);
    if (ref.pid != pid_)
        control |= kPidFollows;
    if (ref.size != 4)
        control |= kSizeFollows;
    os_.put(static_cast<char>(control));

    if (control & kPidFollows) {
        writeVarint(ref.pid);
        pid_ = ref.pid;
    }
    if (control & kSizeFollows)
        os_.put(static_cast<char>(ref.size));

    const auto delta = static_cast<std::int64_t>(ref.addr) -
                       static_cast<std::int64_t>(predicted_);
    writeVarint(zigzagEncode(delta));
    predicted_ = ref.addr + ref.size;
    ++written_;
}

void
CompressedWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    const std::ostream::pos_type end = os_.tellp();
    if (end == std::ostream::pos_type(-1))
        return; // not seekable: count stays unknown
    os_.seekp(8); // offset of Header::count
    os_.write(reinterpret_cast<const char *>(&written_),
              sizeof(written_));
    os_.seekp(end);
}

CompressedReader::CompressedReader(std::istream &is) : is_(is)
{
    Header header{};
    is_.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!is_ || std::memcmp(header.magic, kMagic, 4) != 0)
        mlc_fatal("compressed trace: bad magic (not an MLCZ file)");
    if (header.version != kCompressedTraceVersion)
        mlc_fatal("compressed trace: unsupported version ",
                  header.version);
    declared_ = header.count;
}

bool
CompressedReader::readVarint(std::uint64_t &value)
{
    value = 0;
    unsigned shift = 0;
    for (;;) {
        const int c = is_.get();
        if (c == std::istream::traits_type::eof())
            return false;
        value |= (static_cast<std::uint64_t>(c) & 0x7f) << shift;
        if (!(c & 0x80))
            return true;
        shift += 7;
        if (shift >= 64) {
            warn("compressed trace: varint overflow; stopping");
            return false;
        }
    }
}

bool
CompressedReader::next(MemRef &ref)
{
    if (failed_)
        return false;

    const int control = is_.get();
    if (control == std::istream::traits_type::eof()) {
        if (declared_ != kCountUnknown && delivered_ != declared_)
            warn("compressed trace: truncated; header promised ",
                 declared_, " records, got ", delivered_);
        return false;
    }
    const auto type_bits =
        static_cast<std::uint8_t>(control & 0x3);
    if (type_bits > 2) {
        warn("compressed trace: bad record type; stopping");
        failed_ = true;
        return false;
    }

    if (control & kPidFollows) {
        std::uint64_t pid = 0;
        if (!readVarint(pid) || pid > 0xffff) {
            failed_ = true;
            return false;
        }
        pid_ = static_cast<std::uint16_t>(pid);
    }
    std::uint8_t size = 4;
    if (control & kSizeFollows) {
        const int s = is_.get();
        if (s == std::istream::traits_type::eof()) {
            failed_ = true;
            return false;
        }
        size = static_cast<std::uint8_t>(s);
    }

    std::uint64_t encoded = 0;
    if (!readVarint(encoded)) {
        failed_ = true;
        if (declared_ != kCountUnknown && delivered_ != declared_)
            warn("compressed trace: truncated mid-record at ",
                 delivered_);
        return false;
    }

    ref.addr = static_cast<Addr>(
        static_cast<std::int64_t>(predicted_) +
        zigzagDecode(encoded));
    ref.type = static_cast<RefType>(type_bits);
    ref.size = size;
    ref.pid = pid_;
    predicted_ = ref.addr + ref.size;
    ++delivered_;
    return true;
}

} // namespace trace
} // namespace mlc
