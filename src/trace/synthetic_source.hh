/**
 * @file
 * Profile-driven synthetic long-trace generator.
 *
 * The sampled-replay engine exists to measure billion-reference
 * workloads, but traces that long cannot ship with the repository.
 * SyntheticTraceSource generates them on demand: a finite, seeded,
 * multiprogrammed reference stream whose *data* locality is driven
 * by an explicit LRU stack-depth profile (a histogram of reuse
 * depths) instead of the fixed Pareto law in trace/synthetic.hh.
 * Feeding it a profile measured from a real trace (e.g. with
 * StackDistanceAnalyzer) reproduces that trace's miss-ratio-vs-size
 * curve at any length; the default profile reproduces the paper's
 * ~0.69-per-doubling behaviour.
 *
 * The generator is a TraceSource, so everything that replays traces
 * can consume it directly, and nextBatch() is overridden with a
 * tight scalar loop so 1e8-1e9-reference materialization does not
 * pay a virtual call per reference. Streams are deterministic given
 * (params, seed): the same object re-created with the same
 * arguments produces the identical reference sequence.
 */

#ifndef MLC_TRACE_SYNTHETIC_SOURCE_HH
#define MLC_TRACE_SYNTHETIC_SOURCE_HH

#include <cstdint>
#include <vector>

#include "trace/order_stat_tree.hh"
#include "trace/source.hh"
#include "trace/synthetic.hh"
#include "util/random.hh"

namespace mlc {
namespace trace {

/**
 * A discrete LRU stack-depth profile: bucket b covers depths
 * (upperDepth[b-1], upperDepth[b]] (the first bucket starts at
 * depth 0) and is drawn with probability weight[b] / sum(weights).
 * Within a bucket, depths are uniform. The deepest bound is the
 * generator's steady-state footprint in granules.
 */
struct StackDepthProfile
{
    std::vector<std::uint64_t> upperDepth; //!< ascending bounds
    std::vector<double> weight;            //!< unnormalized

    /**
     * Log2-spaced buckets whose weights follow the Pareto tail
     * P(depth >= d) = ((d+1)/s0)^-theta — the law the default
     * suite generators implement, so a profile-driven stream with
     * this profile matches their miss-ratio-vs-size curve.
     * @param deepest footprint bound in granules (power of two).
     */
    static StackDepthProfile pareto(double theta, double s0,
                                    std::uint64_t deepest);

    /** Panics unless bounds are ascending, weights are
     *  non-negative with a positive sum, and sizes match. */
    void validate() const;
};

/** Parameters of the profile-driven multiprogram stream. */
struct SyntheticTraceParams
{
    /** Total references produced before the source reports
     *  exhaustion (warmup + measure; callers split). */
    std::uint64_t totalRefs = 100'000'000;
    /** Multiprogramming degree. */
    std::size_t processes = 4;
    /** Mean references between context switches (geometric). */
    std::uint64_t switchInterval = 20'000;
    /** Data stack-depth profile; empty uses per-process
     *  Pareto defaults with seeded jitter (suite-like mix). */
    StackDepthProfile profile;
    /** Granule size of the data stream in bytes (power of two). */
    std::uint64_t granuleBytes = 16;
    /** Fraction of instructions carrying a data reference. */
    double dataRefFraction = 0.5;
    /** Fraction of data references that are stores. */
    double storeFraction = 0.35;
};

/**
 * LRU-stack data-address generator driven by a StackDepthProfile.
 * The stack is pre-populated to the profile's deepest bound so the
 * configured reuse distribution holds from the first reference
 * (deep references hit old granules rather than allocating).
 */
class ProfileDataGenerator
{
  public:
    ProfileDataGenerator(const StackDepthProfile &profile,
                         std::uint64_t granule_bytes, Addr base,
                         std::uint64_t seed);

    /** Produce the next data byte address. */
    Addr next();

    /** Granules in the stack (== the profile's deepest bound). */
    std::uint64_t footprint() const { return stack_.size(); }

  private:
    std::vector<std::uint64_t> lowerDepth_; //!< per-bucket lo bound
    std::vector<std::uint64_t> upperDepth_;
    DiscreteSampler buckets_;
    std::uint64_t granuleBytes_;
    Addr base_;
    Rng rng_;
    OrderStatTree stack_;
};

/** The finite multiprogrammed source described in the file
 *  comment. */
class SyntheticTraceSource : public TraceSource
{
  public:
    SyntheticTraceSource(const SyntheticTraceParams &params,
                         std::uint64_t seed);

    bool next(MemRef &ref) override;

    /** Tight scalar loop — no per-reference virtual call. */
    std::size_t nextBatch(MemRef *out, std::size_t n) override;

    const SyntheticTraceParams &params() const { return params_; }
    std::uint64_t totalRefs() const { return params_.totalRefs; }
    std::uint64_t produced() const { return produced_; }

  private:
    struct Process
    {
        LoopInstructionGenerator inst;
        ProfileDataGenerator data;
        Rng mix;
        double dataRefFraction;
        double storeFraction;
        std::uint16_t pid;
        bool dataPending = false;
        MemRef pending;
    };

    /** The body of next(), shared with the batch loop. */
    void step(MemRef &ref);

    void newSwitchInterval();

    SyntheticTraceParams params_;
    std::vector<Process> procs_;
    Rng switchRng_;
    std::size_t current_ = 0;
    std::uint64_t switchLeft_ = 0;
    std::uint64_t produced_ = 0;
};

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_SYNTHETIC_SOURCE_HH
