#include "trace/order_stat_tree.hh"

#include "util/logging.hh"

namespace mlc {
namespace trace {

OrderStatTree::OrderStatTree(std::uint64_t seed) : rng_(seed) {}

OrderStatTree::NodeId
OrderStatTree::allocNode(std::uint64_t value)
{
    NodeId id;
    if (!freeList_.empty()) {
        id = freeList_.back();
        freeList_.pop_back();
    } else {
        id = static_cast<NodeId>(nodes_.size());
        nodes_.emplace_back();
    }
    Node &n = nodes_[id];
    n.left = kNil;
    n.right = kNil;
    n.size = 1;
    n.priority = rng_.next();
    n.value = value;
    return id;
}

void
OrderStatTree::freeNode(NodeId id)
{
    freeList_.push_back(id);
}

std::uint32_t
OrderStatTree::sizeOf(NodeId id) const
{
    return id == kNil ? 0 : nodes_[id].size;
}

void
OrderStatTree::update(NodeId id)
{
    Node &n = nodes_[id];
    n.size = 1 + sizeOf(n.left) + sizeOf(n.right);
}

void
OrderStatTree::splitAt(NodeId root, std::size_t count, NodeId &left,
                       NodeId &right)
{
    if (root == kNil) {
        left = kNil;
        right = kNil;
        return;
    }
    Node &n = nodes_[root];
    const std::size_t left_size = sizeOf(n.left);
    if (count <= left_size) {
        NodeId new_left;
        splitAt(n.left, count, left, new_left);
        n.left = new_left;
        right = root;
    } else {
        NodeId new_right;
        splitAt(n.right, count - left_size - 1, new_right, right);
        n.right = new_right;
        left = root;
    }
    update(root);
}

OrderStatTree::NodeId
OrderStatTree::merge(NodeId a, NodeId b)
{
    if (a == kNil)
        return b;
    if (b == kNil)
        return a;
    if (nodes_[a].priority > nodes_[b].priority) {
        nodes_[a].right = merge(nodes_[a].right, b);
        update(a);
        return a;
    }
    nodes_[b].left = merge(a, nodes_[b].left);
    update(b);
    return b;
}

void
OrderStatTree::insertAt(std::size_t index, std::uint64_t value)
{
    if (index > count_)
        mlc_panic("OrderStatTree::insertAt(", index,
                  ") beyond size ", count_);
    const NodeId id = allocNode(value);
    NodeId left, right;
    splitAt(root_, index, left, right);
    root_ = merge(merge(left, id), right);
    ++count_;
}

std::uint64_t
OrderStatTree::at(std::size_t index) const
{
    if (index >= count_)
        mlc_panic("OrderStatTree::at(", index, ") beyond size ",
                  count_);
    NodeId cur = root_;
    std::size_t i = index;
    for (;;) {
        const Node &n = nodes_[cur];
        const std::size_t left_size = sizeOf(n.left);
        if (i < left_size) {
            cur = n.left;
        } else if (i == left_size) {
            return n.value;
        } else {
            i -= left_size + 1;
            cur = n.right;
        }
    }
}

std::uint64_t
OrderStatTree::removeAt(std::size_t index)
{
    if (index >= count_)
        mlc_panic("OrderStatTree::removeAt(", index,
                  ") beyond size ", count_);
    NodeId left, mid, right;
    splitAt(root_, index, left, mid);
    splitAt(mid, 1, mid, right);
    const std::uint64_t value = nodes_[mid].value;
    freeNode(mid);
    root_ = merge(left, right);
    --count_;
    return value;
}

void
OrderStatTree::clear()
{
    nodes_.clear();
    freeList_.clear();
    root_ = kNil;
    count_ = 0;
}

std::vector<std::uint64_t>
OrderStatTree::toVector() const
{
    std::vector<std::uint64_t> out;
    out.reserve(count_);
    // Iterative in-order walk; the tree can be deep for adversarial
    // priorities, so avoid recursion.
    std::vector<NodeId> stack;
    NodeId cur = root_;
    while (cur != kNil || !stack.empty()) {
        while (cur != kNil) {
            stack.push_back(cur);
            cur = nodes_[cur].left;
        }
        cur = stack.back();
        stack.pop_back();
        out.push_back(nodes_[cur].value);
        cur = nodes_[cur].right;
    }
    return out;
}

} // namespace trace
} // namespace mlc
