/**
 * @file
 * Trace source/sink interfaces and the small adaptors built on them.
 *
 * A TraceSource produces MemRefs — one at a time through next(),
 * or many per call through nextBatch() for hot-path consumers; file
 * readers are finite, synthetic generators are unbounded. A
 * TraceSink consumes them (file writers, counters). The simulator
 * pulls from whatever source it is given, so workloads, files and
 * test vectors are interchangeable.
 */

#ifndef MLC_TRACE_SOURCE_HH
#define MLC_TRACE_SOURCE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/mem_ref.hh"

namespace mlc {
namespace trace {

/** Pull-style producer of memory references. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     * @param ref receives the reference on success.
     * @return false when the source is exhausted.
     */
    virtual bool next(MemRef &ref) = 0;

    /**
     * Produce up to @p n references into @p out.
     *
     * The batch API is what keeps virtual dispatch off the replay
     * hot path: consumers pull a few hundred references per call
     * and iterate them as a plain array. The default implementation
     * is a scalar loop over next(), so every source supports
     * batching; contiguous sources (VectorSource, mapped binary
     * traces) override it with a single copy.
     *
     * @return the number of references produced; 0 means exhausted
     *         (a short count by itself does not — callers keep
     *         pulling until they see 0).
     */
    virtual std::size_t
    nextBatch(MemRef *out, std::size_t n)
    {
        std::size_t got = 0;
        while (got < n && next(out[got]))
            ++got;
        return got;
    }
};

/** Push-style consumer of memory references. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one reference. */
    virtual void put(const MemRef &ref) = 0;
};

/** A source backed by an in-memory vector (tests, replay). */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<MemRef> refs)
        : refs_(std::move(refs))
    {}

    bool
    next(MemRef &ref) override
    {
        if (pos_ >= refs_.size())
            return false;
        ref = refs_[pos_++];
        return true;
    }

    std::size_t
    nextBatch(MemRef *out, std::size_t n) override
    {
        const std::size_t got =
            std::min(n, refs_.size() - pos_);
        std::copy(refs_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  refs_.begin() +
                      static_cast<std::ptrdiff_t>(pos_ + got),
                  out);
        pos_ += got;
        return got;
    }

    /** Zero-copy view of the whole backing vector; consumers that
     *  can iterate an array should prefer this over next(). */
    RefSpan span() const { return {refs_.data(), refs_.size()}; }

    /** The not-yet-consumed tail as a zero-copy view. */
    RefSpan remaining() const
    {
        return {refs_.data() + pos_, refs_.size() - pos_};
    }

    /** Rewind to the beginning (replay for solo co-simulation). */
    void rewind() { pos_ = 0; }

  private:
    std::vector<MemRef> refs_;
    std::size_t pos_ = 0;
};

/**
 * A non-owning source over a RefSpan (adapts zero-copy views to
 * the pull interface where a TraceSource is still required). The
 * underlying storage must outlive the source.
 */
class SpanSource : public TraceSource
{
  public:
    explicit SpanSource(RefSpan span) : span_(span) {}

    bool
    next(MemRef &ref) override
    {
        if (pos_ >= span_.size)
            return false;
        ref = span_[pos_++];
        return true;
    }

    std::size_t
    nextBatch(MemRef *out, std::size_t n) override
    {
        const std::size_t got = std::min(n, span_.size - pos_);
        std::copy(span_.data + pos_, span_.data + pos_ + got, out);
        pos_ += got;
        return got;
    }

    /** The not-yet-consumed tail as a zero-copy view. */
    RefSpan remaining() const { return span_.dropFirst(pos_); }

    void rewind() { pos_ = 0; }

  private:
    RefSpan span_;
    std::size_t pos_ = 0;
};

/** A sink that stores everything it sees. */
class VectorSink : public TraceSink
{
  public:
    void put(const MemRef &ref) override { refs_.push_back(ref); }

    const std::vector<MemRef> &refs() const { return refs_; }
    std::vector<MemRef> take() { return std::move(refs_); }

  private:
    std::vector<MemRef> refs_;
};

/** Caps an underlying source at a fixed number of references. */
class LimitSource : public TraceSource
{
  public:
    /** Does not own @p inner ; it must outlive this adaptor. */
    LimitSource(TraceSource &inner, std::uint64_t limit)
        : inner_(inner), remaining_(limit)
    {}

    bool
    next(MemRef &ref) override
    {
        if (remaining_ == 0)
            return false;
        if (!inner_.next(ref))
            return false;
        --remaining_;
        return true;
    }

  private:
    TraceSource &inner_;
    std::uint64_t remaining_;
};

/** Drain @p source into @p sink ; returns the number transferred. */
std::uint64_t drain(TraceSource &source, TraceSink &sink);

/** Collect up to @p limit references into a vector. */
std::vector<MemRef> collect(TraceSource &source, std::uint64_t limit);

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_SOURCE_HH
