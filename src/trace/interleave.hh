/**
 * @file
 * Multiprogramming interleaver.
 *
 * The paper's MIPS traces were "randomly interleaved to match the
 * context switch intervals seen in the VAX traces". This adaptor
 * does the same for any set of per-process sources: it runs one
 * process at a time and switches round-robin after a geometrically
 * distributed number of references.
 */

#ifndef MLC_TRACE_INTERLEAVE_HH
#define MLC_TRACE_INTERLEAVE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/source.hh"
#include "util/random.hh"

namespace mlc {
namespace trace {

/** Round-robin context-switching combinator over trace sources. */
class Interleaver : public TraceSource
{
  public:
    /**
     * @param processes per-process sources (ownership transferred).
     * @param mean_switch_interval mean references between context
     *        switches (the VAX traces showed ~10-20k).
     * @param seed RNG seed for the switch intervals.
     */
    Interleaver(std::vector<std::unique_ptr<TraceSource>> processes,
                std::uint64_t mean_switch_interval,
                std::uint64_t seed);

    bool next(MemRef &ref) override;

    /** Number of context switches performed so far. */
    std::uint64_t switches() const { return switches_; }

    std::size_t processCount() const { return processes_.size(); }

  private:
    void newInterval();

    std::vector<std::unique_ptr<TraceSource>> processes_;
    std::vector<bool> exhausted_;
    std::uint64_t meanInterval_;
    Rng rng_;
    std::size_t current_ = 0;
    std::uint64_t intervalLeft_ = 0;
    std::uint64_t switches_ = 0;
    std::size_t liveCount_;
};

/**
 * Construct the paper-style multiprogramming workload: @p processes
 * synthetic workloads with per-process parameter jitter, interleaved
 * at @p switch_interval references. @p variant selects one of the
 * reproducible "traces" in the suite (the paper used eight).
 */
std::unique_ptr<TraceSource>
makeMultiprogrammedWorkload(std::size_t processes,
                            std::uint64_t switch_interval,
                            std::uint64_t variant);

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_INTERLEAVE_HH
