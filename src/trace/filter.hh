/**
 * @file
 * Stream adaptors over TraceSource: skipping a cold-start prefix,
 * selecting reads, masking address bits, and counting by type.
 * Each adaptor borrows (does not own) its inner source.
 */

#ifndef MLC_TRACE_FILTER_HH
#define MLC_TRACE_FILTER_HH

#include <cstdint>

#include "trace/source.hh"

namespace mlc {
namespace trace {

/** Drops the first N references (cold-start removal). */
class SkipSource : public TraceSource
{
  public:
    SkipSource(TraceSource &inner, std::uint64_t skip)
        : inner_(inner), toSkip_(skip)
    {}

    bool next(MemRef &ref) override;

  private:
    TraceSource &inner_;
    std::uint64_t toSkip_;
};

/** Passes only read references (loads + instruction fetches). */
class ReadsOnlySource : public TraceSource
{
  public:
    explicit ReadsOnlySource(TraceSource &inner) : inner_(inner) {}

    bool next(MemRef &ref) override;

  private:
    TraceSource &inner_;
};

/** ANDs every address with a mask (e.g. to fold address spaces). */
class MaskSource : public TraceSource
{
  public:
    MaskSource(TraceSource &inner, Addr mask)
        : inner_(inner), mask_(mask)
    {}

    bool next(MemRef &ref) override;

  private:
    TraceSource &inner_;
    Addr mask_;
};

/**
 * Windowed time sampling: pass @p window_refs references, then drop
 * @p gap_refs, repeatedly — the classic trace-sampling technique
 * for stretching limited trace storage (the sampled stream's miss
 * ratios approximate the full stream's when windows comfortably
 * exceed the cache's warm-up transient).
 */
class SampleSource : public TraceSource
{
  public:
    SampleSource(TraceSource &inner, std::uint64_t window_refs,
                 std::uint64_t gap_refs);

    bool next(MemRef &ref) override;

    std::uint64_t passed() const { return passed_; }
    std::uint64_t dropped() const { return dropped_; }

  private:
    TraceSource &inner_;
    std::uint64_t window_;
    std::uint64_t gap_;
    std::uint64_t inWindow_ = 0;
    std::uint64_t passed_ = 0;
    std::uint64_t dropped_ = 0;
};

/** Per-type reference counts accumulated by observation. */
struct RefCounts
{
    std::uint64_t ifetches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    std::uint64_t total() const { return ifetches + loads + stores; }
    std::uint64_t reads() const { return ifetches + loads; }

    void
    observe(const MemRef &ref)
    {
        switch (ref.type) {
          case RefType::IFetch:
            ++ifetches;
            break;
          case RefType::Load:
            ++loads;
            break;
          case RefType::Store:
            ++stores;
            break;
        }
    }
};

/** Pass-through source that tallies what flows past. */
class CountingSource : public TraceSource
{
  public:
    explicit CountingSource(TraceSource &inner) : inner_(inner) {}

    bool next(MemRef &ref) override;

    const RefCounts &counts() const { return counts_; }

  private:
    TraceSource &inner_;
    RefCounts counts_;
};

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_FILTER_HH
