#include "trace/filter.hh"

#include "util/logging.hh"

namespace mlc {
namespace trace {

bool
SkipSource::next(MemRef &ref)
{
    while (toSkip_ > 0) {
        if (!inner_.next(ref))
            return false;
        --toSkip_;
    }
    return inner_.next(ref);
}

bool
ReadsOnlySource::next(MemRef &ref)
{
    while (inner_.next(ref)) {
        if (ref.isRead())
            return true;
    }
    return false;
}

bool
MaskSource::next(MemRef &ref)
{
    if (!inner_.next(ref))
        return false;
    ref.addr &= mask_;
    return true;
}

SampleSource::SampleSource(TraceSource &inner,
                           std::uint64_t window_refs,
                           std::uint64_t gap_refs)
    : inner_(inner), window_(window_refs), gap_(gap_refs)
{
    if (window_ == 0)
        mlc_panic("SampleSource window must be non-zero");
}

bool
SampleSource::next(MemRef &ref)
{
    if (inWindow_ >= window_) {
        // Skip the gap.
        for (std::uint64_t i = 0; i < gap_; ++i) {
            if (!inner_.next(ref))
                return false;
            ++dropped_;
        }
        inWindow_ = 0;
    }
    if (!inner_.next(ref))
        return false;
    ++inWindow_;
    ++passed_;
    return true;
}

bool
CountingSource::next(MemRef &ref)
{
    if (!inner_.next(ref))
        return false;
    counts_.observe(ref);
    return true;
}

} // namespace trace
} // namespace mlc
