#include "trace/interleave.hh"

#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace mlc {
namespace trace {

Interleaver::Interleaver(
        std::vector<std::unique_ptr<TraceSource>> processes,
        std::uint64_t mean_switch_interval, std::uint64_t seed)
    : processes_(std::move(processes)),
      exhausted_(processes_.size(), false),
      meanInterval_(mean_switch_interval),
      rng_(seed),
      liveCount_(processes_.size())
{
    if (processes_.empty())
        mlc_panic("Interleaver needs at least one process");
    if (meanInterval_ == 0)
        mlc_panic("Interleaver switch interval must be non-zero");
    for (const auto &p : processes_)
        if (!p)
            mlc_panic("Interleaver given a null process source");
    newInterval();
}

void
Interleaver::newInterval()
{
    intervalLeft_ =
        1 + rng_.nextGeometric(1.0 / static_cast<double>(
                                         meanInterval_));
}

bool
Interleaver::next(MemRef &ref)
{
    while (liveCount_ > 0) {
        if (exhausted_[current_] || intervalLeft_ == 0) {
            // Advance round-robin to the next live process.
            std::size_t tries = 0;
            do {
                current_ = (current_ + 1) % processes_.size();
                ++tries;
            } while (exhausted_[current_] &&
                     tries <= processes_.size());
            newInterval();
            ++switches_;
        }
        if (exhausted_[current_])
            return false;
        if (processes_[current_]->next(ref)) {
            --intervalLeft_;
            return true;
        }
        exhausted_[current_] = true;
        --liveCount_;
        intervalLeft_ = 0;
    }
    return false;
}

std::unique_ptr<TraceSource>
makeMultiprogrammedWorkload(std::size_t processes,
                            std::uint64_t switch_interval,
                            std::uint64_t variant)
{
    std::vector<std::unique_ptr<TraceSource>> procs;
    procs.reserve(processes);
    for (std::size_t i = 0; i < processes; ++i) {
        const auto pid = static_cast<std::uint16_t>(i);
        const WorkloadParams params =
            makeProcessParams(pid, variant * 131 + i);
        const std::uint64_t seed =
            0x2545f4914f6cdd1dULL * (variant + 1) + 0x9e37 * i;
        procs.push_back(
            std::make_unique<WorkloadGenerator>(params, seed));
    }
    return std::make_unique<Interleaver>(
        std::move(procs), switch_interval,
        0xda3e39cb94b95bdbULL ^ variant);
}

} // namespace trace
} // namespace mlc
