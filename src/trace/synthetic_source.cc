#include "trace/synthetic_source.hh"

#include <algorithm>
#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mlc {
namespace trace {

StackDepthProfile
StackDepthProfile::pareto(double theta, double s0,
                          std::uint64_t deepest)
{
    if (!isPowerOfTwo(deepest))
        mlc_panic("StackDepthProfile::pareto: deepest bound must "
                  "be a power of two, got ",
                  deepest);
    ParetoDepthSampler law(theta, s0);

    StackDepthProfile p;
    // Buckets [0,1], (1,3], (3,7], ... (deepest/2-1, deepest-1]:
    // log2 spacing matches how miss ratios are read off the
    // profile (per size doubling).
    std::uint64_t hi = 1;
    std::uint64_t lo_tailarg = 0;
    while (hi < deepest) {
        const std::uint64_t bound = hi - 1;
        const double mass =
            law.tail(lo_tailarg) - law.tail(bound + 1);
        p.upperDepth.push_back(bound);
        p.weight.push_back(std::max(mass, 0.0));
        lo_tailarg = bound + 1;
        hi *= 2;
    }
    // Terminal bucket: everything beyond the last bound up to the
    // footprint cap gets the law's remaining tail mass.
    p.upperDepth.push_back(deepest - 1);
    p.weight.push_back(law.tail(lo_tailarg));
    p.validate();
    return p;
}

void
StackDepthProfile::validate() const
{
    if (upperDepth.empty() ||
        upperDepth.size() != weight.size())
        mlc_panic("StackDepthProfile: need matching non-empty "
                  "bounds/weights, got ",
                  upperDepth.size(), " bounds and ", weight.size(),
                  " weights");
    double total = 0.0;
    for (std::size_t b = 0; b < upperDepth.size(); ++b) {
        if (b > 0 && upperDepth[b] <= upperDepth[b - 1])
            mlc_panic("StackDepthProfile: bounds must ascend "
                      "(bucket ",
                      b, ": ", upperDepth[b], " after ",
                      upperDepth[b - 1], ")");
        if (weight[b] < 0.0)
            mlc_panic("StackDepthProfile: negative weight in "
                      "bucket ",
                      b);
        total += weight[b];
    }
    if (total <= 0.0)
        mlc_panic("StackDepthProfile: weights sum to zero");
}

namespace {

/** Validate-then-pass helper so the sampler member can be built
 *  in the initializer list from a checked profile. */
const std::vector<double> &
validatedWeights(const StackDepthProfile &profile)
{
    profile.validate();
    return profile.weight;
}

} // namespace

ProfileDataGenerator::ProfileDataGenerator(
        const StackDepthProfile &profile,
        std::uint64_t granule_bytes, Addr base, std::uint64_t seed)
    : buckets_(validatedWeights(profile)),
      granuleBytes_(granule_bytes),
      base_(base),
      rng_(seed),
      stack_(seed ^ 0x9d2c5680ULL)
{
    if (!isPowerOfTwo(granule_bytes))
        mlc_panic("data granule size must be a power of two, "
                  "got ",
                  granule_bytes);
    upperDepth_ = profile.upperDepth;
    lowerDepth_.reserve(upperDepth_.size());
    std::uint64_t lo = 0;
    for (std::uint64_t hi : upperDepth_) {
        lowerDepth_.push_back(lo);
        lo = hi + 1;
    }

    // Pre-populate to the deepest bound so every bucket has
    // granules to hit from the first draw (cold-start would turn
    // deep reuse into compulsory allocations and distort the
    // profile).
    const std::uint64_t footprint = upperDepth_.back() + 1;
    for (std::uint64_t g = 0; g < footprint; ++g)
        stack_.pushFront(g);
}

Addr
ProfileDataGenerator::next()
{
    const std::size_t b = buckets_.sample(rng_);
    const std::uint64_t depth =
        lowerDepth_[b] == upperDepth_[b]
            ? lowerDepth_[b]
            : rng_.nextRange(lowerDepth_[b], upperDepth_[b]);
    const std::uint64_t granule = stack_.removeAt(
        static_cast<std::size_t>(depth));
    stack_.pushFront(granule);

    const std::uint64_t words = granuleBytes_ / 4;
    const std::uint64_t word = rng_.nextBounded(words);
    return base_ + granule * granuleBytes_ + word * 4;
}

namespace {

/** Per-process generator parameters, jittered like
 *  makeProcessParams so the mix is not N copies of one program. */
struct ProcSetup
{
    InstStreamParams inst;
    StackDepthProfile profile;
    Addr dataBase;
    double dataRefFraction;
    double storeFraction;
};

ProcSetup
makeProcSetup(const SyntheticTraceParams &params,
              std::uint16_t pid, std::uint64_t seed)
{
    Rng jitter(0x51ab1e00ULL + seed * 8191 + pid);
    ProcSetup s;
    const Addr text_scatter =
        jitter.nextBounded(1u << 24) & ~0xfffULL;
    const Addr data_scatter =
        jitter.nextBounded(1u << 24) & ~0xfffULL;
    s.inst.base = (static_cast<Addr>(pid) << 32) + text_scatter;
    s.inst.numFunctions =
        static_cast<std::uint32_t>(jitter.nextRange(256, 512));
    s.inst.functionZipf = 1.25 + 0.35 * jitter.nextDouble();
    s.inst.meanFunctionLength = 56 + 48 * jitter.nextDouble();
    s.dataBase = (static_cast<Addr>(pid) << 32) + 0x40000000 +
                 data_scatter;
    if (params.profile.upperDepth.empty()) {
        // Default: suite-like Pareto behaviour with per-process
        // locality jitter.
        s.profile = StackDepthProfile::pareto(
            0.64 + 0.10 * jitter.nextDouble(),
            4.0 + 2.0 * jitter.nextDouble(), std::uint64_t{1}
                                                 << 17);
        s.dataRefFraction = 0.45 + 0.10 * jitter.nextDouble();
        s.storeFraction = 0.30 + 0.10 * jitter.nextDouble();
    } else {
        // Explicit profile: every process realizes the same reuse
        // law (its own granules and seed), so the aggregate stream
        // matches the profile by construction.
        s.profile = params.profile;
        s.dataRefFraction = params.dataRefFraction;
        s.storeFraction = params.storeFraction;
    }
    return s;
}

} // namespace

SyntheticTraceSource::SyntheticTraceSource(
        const SyntheticTraceParams &params, std::uint64_t seed)
    : params_(params), switchRng_(seed ^ 0xdecafbadULL)
{
    if (params_.processes == 0)
        mlc_panic("SyntheticTraceSource needs at least one "
                  "process");
    if (params_.switchInterval == 0)
        mlc_panic("SyntheticTraceSource switch interval must be "
                  "non-zero");
    if (!params_.profile.upperDepth.empty())
        params_.profile.validate();

    procs_.reserve(params_.processes);
    for (std::size_t p = 0; p < params_.processes; ++p) {
        const auto pid = static_cast<std::uint16_t>(p);
        const ProcSetup s = makeProcSetup(params_, pid, seed);
        Rng forker(seed * 0x9e3779b9ULL + 0xc0ffee00ULL + p);
        procs_.push_back(Process{
            LoopInstructionGenerator(s.inst, forker.next()),
            ProfileDataGenerator(s.profile, params_.granuleBytes,
                                 s.dataBase, forker.next()),
            Rng(forker.next()), s.dataRefFraction, s.storeFraction,
            pid, false, MemRef{}});
    }
    newSwitchInterval();
}

void
SyntheticTraceSource::newSwitchInterval()
{
    const double p =
        1.0 / static_cast<double>(params_.switchInterval);
    switchLeft_ = 1 + switchRng_.nextGeometric(p);
}

void
SyntheticTraceSource::step(MemRef &ref)
{
    Process &proc = procs_[current_];
    if (proc.dataPending) {
        ref = proc.pending;
        proc.dataPending = false;
    } else {
        ref.addr = proc.inst.next();
        ref.type = RefType::IFetch;
        ref.size = 4;
        ref.pid = proc.pid;
        if (proc.mix.nextBool(proc.dataRefFraction)) {
            proc.pending.addr = proc.data.next();
            proc.pending.type =
                proc.mix.nextBool(proc.storeFraction)
                    ? RefType::Store
                    : RefType::Load;
            proc.pending.size = 4;
            proc.pending.pid = proc.pid;
            proc.dataPending = true;
        }
    }
    ++produced_;
    if (--switchLeft_ == 0) {
        current_ = (current_ + 1) % procs_.size();
        newSwitchInterval();
    }
}

bool
SyntheticTraceSource::next(MemRef &ref)
{
    if (produced_ >= params_.totalRefs)
        return false;
    step(ref);
    return true;
}

std::size_t
SyntheticTraceSource::nextBatch(MemRef *out, std::size_t n)
{
    const std::uint64_t left = params_.totalRefs - produced_;
    const std::size_t got = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, left));
    for (std::size_t i = 0; i < got; ++i)
        step(out[i]);
    return got;
}

} // namespace trace
} // namespace mlc
