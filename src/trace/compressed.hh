/**
 * @file
 * Compressed binary trace format ("MLCZ").
 *
 * Instruction streams are overwhelmingly sequential and data
 * streams cluster, so each record stores a zigzag-varint *delta*
 * from a sequential prediction (previous address + previous size)
 * instead of a raw 64-bit address:
 *
 *   header:  magic "MLCZ" | u32 version | u64 record count
 *   record:  control byte | [varint pid] | [u8 size] | varint
 *            zigzag(addr - prediction)
 *
 * Control byte: bits 0-1 reference type, bit 2 "pid follows",
 * bit 3 "size follows" (otherwise 4 bytes). A perfectly sequential
 * instruction stream costs 2 bytes per reference (control +
 * delta 0), ~8x tighter than the fixed-record MLCT format.
 */

#ifndef MLC_TRACE_COMPRESSED_HH
#define MLC_TRACE_COMPRESSED_HH

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <ostream>

#include "trace/source.hh"

namespace mlc {
namespace trace {

constexpr std::uint32_t kCompressedTraceVersion = 1;

/** Streaming reader; validates the header on construction. */
class CompressedReader : public TraceSource
{
  public:
    /** Does not own @p is ; binary mode required. Calls fatal() on
     *  a bad magic/version. */
    explicit CompressedReader(std::istream &is);

    bool next(MemRef &ref) override;

    std::uint64_t declaredCount() const { return declared_; }
    std::uint64_t deliveredCount() const { return delivered_; }

  private:
    bool readVarint(std::uint64_t &value);

    std::istream &is_;
    std::uint64_t declared_ = 0;
    std::uint64_t delivered_ = 0;
    Addr predicted_ = 0;
    std::uint16_t pid_ = 0;
    bool failed_ = false;
};

/** Streaming writer; finish() back-patches the record count. */
class CompressedWriter : public TraceSink
{
  public:
    /** Does not own @p os ; binary mode required. */
    explicit CompressedWriter(std::ostream &os);

    void put(const MemRef &ref) override;

    /** Finalize the header; further put() calls are an error. */
    void finish();

    std::uint64_t written() const { return written_; }

  private:
    void writeVarint(std::uint64_t value);

    std::ostream &os_;
    std::uint64_t written_ = 0;
    Addr predicted_ = 0;
    std::uint16_t pid_ = 0;
    bool finished_ = false;
};

/** Zigzag mapping of signed deltas onto unsigned varints. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_COMPRESSED_HH
