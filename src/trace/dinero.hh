/**
 * @file
 * Dinero-style ASCII trace format.
 *
 * Each line is "<label> <hex-address> [pid]" where label is
 * 0 = data read, 1 = data write, 2 = instruction fetch — the "din"
 * input format of the classic Dinero cache simulators. The optional
 * third field is an extension carrying the process id for
 * multiprogramming traces; readers default it to 0.
 */

#ifndef MLC_TRACE_DINERO_HH
#define MLC_TRACE_DINERO_HH

#include <iosfwd>
#include <istream>
#include <ostream>
#include <string>

#include "trace/source.hh"

namespace mlc {
namespace trace {

/** Reads "din" records from a text stream. */
class DineroReader : public TraceSource
{
  public:
    /** Does not own @p is ; it must outlive the reader. */
    explicit DineroReader(std::istream &is) : is_(is) {}

    /** Malformed lines terminate the stream with a warning. */
    bool next(MemRef &ref) override;

    /** Lines consumed so far (for error reporting). */
    std::uint64_t line() const { return line_; }

  private:
    std::istream &is_;
    std::uint64_t line_ = 0;
    bool failed_ = false;
};

/** Writes "din" records to a text stream. */
class DineroWriter : public TraceSink
{
  public:
    /** Does not own @p os ; it must outlive the writer. */
    explicit DineroWriter(std::ostream &os, bool emit_pid = false)
        : os_(os), emitPid_(emit_pid)
    {}

    void put(const MemRef &ref) override;

  private:
    std::ostream &os_;
    bool emitPid_;
};

/** Parse a single din line; returns false on malformed input. */
bool parseDineroLine(const std::string &text, MemRef &ref);

/** Format a single din line (no trailing newline). */
std::string formatDineroLine(const MemRef &ref, bool emit_pid);

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_DINERO_HH
