#include "trace/stack_distance.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace mlc {
namespace trace {

StackDistanceAnalyzer::StackDistanceAnalyzer(
    std::uint64_t granule_bytes, std::uint64_t max_granules)
    : maxGranules_(max_granules)
{
    if (granule_bytes == 0 || !isPowerOfTwo(granule_bytes))
        mlc_panic("StackDistanceAnalyzer: granule size must be a "
                  "power of two, got ",
                  granule_bytes, " bytes");
    if (max_granules == 0)
        mlc_panic("StackDistanceAnalyzer: max_granules must be "
                  "nonzero");
    granuleShift_ = exactLog2(granule_bytes);
    fenwick_.assign(1, 0);
}

void
StackDistanceAnalyzer::fenwickAdd(std::size_t pos, std::int64_t delta)
{
    for (std::size_t i = pos; i < fenwick_.size();
         i += i & (~i + 1))
        fenwick_[i] += delta;
}

std::int64_t
StackDistanceAnalyzer::fenwickPrefix(std::size_t pos) const
{
    std::int64_t sum = 0;
    for (std::size_t i = pos; i > 0; i -= i & (~i + 1))
        sum += fenwick_[i];
    return sum;
}

void
StackDistanceAnalyzer::compact()
{
    // Renumber live granules by recency order so the time axis
    // shrinks back to the footprint size.
    std::vector<std::pair<std::size_t, Addr>> order;
    order.reserve(last_.size());
    for (const auto &[granule, when] : last_)
        order.emplace_back(when, granule);
    std::sort(order.begin(), order.end());

    now_ = order.size();
    fenwick_.assign(2 * now_ + 2, 0);
    std::size_t t = 1;
    for (auto &[when, granule] : order) {
        last_[granule] = t;
        fenwickAdd(t, 1);
        ++t;
    }
}

void
StackDistanceAnalyzer::recordDistance(std::uint64_t distance)
{
    if (distance < kExactLimit) {
        if (distance >= exact_.size())
            exact_.resize(static_cast<std::size_t>(distance) + 1, 0);
        ++exact_[static_cast<std::size_t>(distance)];
    } else {
        ++overLimit_;
    }

    const std::size_t bucket =
        distance == 0 ? 0 : floorLog2(distance);
    if (bucket >= profile_.size())
        profile_.resize(bucket + 1, 0);
    ++profile_[bucket];
}

std::uint64_t
StackDistanceAnalyzer::access(Addr addr)
{
    const Addr granule = addr >> granuleShift_;
    ++references_;

    ++now_;
    if (now_ >= fenwick_.size()) {
        if (fenwick_.size() > 4 * (last_.size() + 1)) {
            compact();
            ++now_;
        } else {
            // A Fenwick tree cannot simply be zero-extended: the
            // new high-index nodes must cover existing marks, so
            // rebuild from the per-granule positions.
            fenwick_.assign(2 * fenwick_.size() + 2, 0);
            for (const auto &[live_granule, when] : last_) {
                (void)live_granule;
                fenwickAdd(when, 1);
            }
        }
    }

    auto it = last_.find(granule);
    std::uint64_t distance;
    if (it == last_.end()) {
        if (last_.size() >= maxGranules_)
            mlc_panic(
                "StackDistanceAnalyzer: trace footprint exceeds ",
                maxGranules_,
                " distinct granules; exact stack-distance state "
                "grows with the footprint and would keep growing. "
                "Use the sampled engine (--engine=mrc / "
                "mrc::SampledStackDistance) for traces this large, "
                "or raise the cap explicitly if the memory is "
                "truly available.");
        distance = kInfinite;
        ++infiniteCount_;
    } else {
        // Marks strictly after the previous access are exactly the
        // distinct granules touched in between.
        const std::int64_t between =
            fenwickPrefix(now_ - 1) - fenwickPrefix(it->second);
        distance = static_cast<std::uint64_t>(between);
        fenwickAdd(it->second, -1);
        recordDistance(distance);
    }

    fenwickAdd(now_, 1);
    last_[granule] = now_;
    return distance;
}

double
StackDistanceAnalyzer::missRatio(std::uint64_t capacity_granules) const
{
    if (references_ == 0)
        return 0.0;
    std::uint64_t misses = infiniteCount_ + overLimit_;
    for (std::size_t d = static_cast<std::size_t>(capacity_granules);
         d < exact_.size(); ++d)
        misses += exact_[d];
    if (capacity_granules >= kExactLimit)
        mlc_panic("StackDistanceAnalyzer::missRatio beyond exact "
                  "tracking limit");
    return static_cast<double>(misses) /
           static_cast<double>(references_);
}

} // namespace trace
} // namespace mlc
