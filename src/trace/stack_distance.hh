/**
 * @file
 * LRU stack-distance analysis of a reference stream.
 *
 * The stack distance of a reference is the number of *distinct*
 * granules referenced since the previous reference to the same
 * granule (0 = immediate re-reference; first touches are
 * "infinite"). The distance profile determines the miss ratio of a
 * fully-associative LRU cache of any size in one pass, which is how
 * the calibration tests check that the synthetic traces show the
 * paper's miss-ratio-vs-size behaviour.
 *
 * Implementation: Fenwick tree over access times with one mark per
 * granule at its most recent access; distance queries and updates
 * are O(log T). The time axis is compacted when it grows far beyond
 * the number of live granules, keeping memory proportional to the
 * footprint rather than the trace length.
 *
 * Memory model — read before pointing this at a big trace: granules
 * are never forgotten, so memory grows with the *footprint* (one
 * hash-map entry plus one Fenwick slot per distinct granule, ~100
 * bytes each), not with the trace length. A trace touching 1G
 * distinct 16-byte granules wants ~100GB. The analyzer panics when
 * the footprint exceeds a configurable cap rather than driving the
 * machine into swap; for larger-than-RAM traces use the sampled
 * engine (--engine=mrc / mrc::SampledStackDistance), which holds
 * the same curve in O(sample-budget) memory.
 */

#ifndef MLC_TRACE_STACK_DISTANCE_HH
#define MLC_TRACE_STACK_DISTANCE_HH

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "trace/mem_ref.hh"

namespace mlc {
namespace trace {

/** Online LRU stack-distance profiler. */
class StackDistanceAnalyzer
{
  public:
    /** Distance reported for a granule's first reference. */
    static constexpr std::uint64_t kInfinite =
        std::numeric_limits<std::uint64_t>::max();

    /** Default footprint cap: 2^28 granules is ~25GB of tracking
     *  state — past any plausible deliberate use of the exact
     *  analyzer, hit well before the OOM killer would be. */
    static constexpr std::uint64_t kDefaultMaxGranules = 1u << 28;

    /**
     * @param granule_bytes addresses are collapsed to granules of
     *        this (power-of-two) size before analysis.
     * @param max_granules panic (loudly, with a pointer at the
     *        sampled engine) when the distinct-granule footprint
     *        exceeds this; the exact analyzer's memory is
     *        proportional to it and unbounded otherwise.
     */
    explicit StackDistanceAnalyzer(
        std::uint64_t granule_bytes = 16,
        std::uint64_t max_granules = kDefaultMaxGranules);

    /**
     * Record one reference.
     * @return its stack distance, or kInfinite for a first touch.
     */
    std::uint64_t access(Addr addr);

    /** Number of references recorded. */
    std::uint64_t references() const { return references_; }

    /** Number of distinct granules seen (compulsory misses). */
    std::uint64_t distinctGranules() const { return last_.size(); }

    /** Number of first-touch ("infinite distance") references.
     *  Granules are never forgotten, so this always equals
     *  distinctGranules(); both spellings exist because callers ask
     *  the question from different directions (footprint vs miss
     *  accounting). */
    std::uint64_t infiniteCount() const { return infiniteCount_; }

    /**
     * Miss ratio of a fully-associative LRU cache holding
     * @p capacity_granules granules, over the stream seen so far:
     * references with distance >= capacity (plus first touches)
     * divided by all references.
     */
    double missRatio(std::uint64_t capacity_granules) const;

    /**
     * Histogram of finite distances in log2 buckets:
     * bucket i counts distances in [2^i, 2^(i+1)), bucket 0 also
     * counts distance 0.
     */
    const std::vector<std::uint64_t> &log2Profile() const
    {
        return profile_;
    }

  private:
    void fenwickAdd(std::size_t pos, std::int64_t delta);
    std::int64_t fenwickPrefix(std::size_t pos) const;
    void compact();
    void recordDistance(std::uint64_t distance);

    std::uint64_t granuleShift_;
    std::uint64_t maxGranules_;
    std::uint64_t references_ = 0;
    std::uint64_t infiniteCount_ = 0;

    // Fenwick tree over time slots, 1-based positions.
    std::vector<std::int64_t> fenwick_;
    std::size_t now_ = 0;
    std::unordered_map<Addr, std::size_t> last_;

    std::vector<std::uint64_t> profile_;
    // Exact counts per distance, grown on demand up to kExactLimit;
    // distances beyond the limit are lumped into overLimit_. This
    // makes missRatio() exact for any capacity below the limit.
    std::vector<std::uint64_t> exact_;
    std::uint64_t overLimit_ = 0;
    static constexpr std::size_t kExactLimit = 1u << 22;
};

} // namespace trace
} // namespace mlc

#endif // MLC_TRACE_STACK_DISTANCE_HH
